// Package webui implements the SPATE-UI application layer as an HTTP
// service (paper §VI-B): a JSON exploration API over the engine's
// Q(a, b, w) interface plus a built-in heatmap page. The paper's interface
// sits on Google Maps; ours renders the cell grid on a canvas — the
// exploration semantics underneath (spatial box, temporal window, template
// queries, highlights playback) are the same.
package webui

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"spate/internal/core"
	"spate/internal/gen"
	"spate/internal/geo"
	"spate/internal/highlights"
	"spate/internal/index"
	"spate/internal/lifecycle"
	"spate/internal/obs"
	"spate/internal/serving"
	"spate/internal/sqlengine"
	"spate/internal/tasks"
	"spate/internal/telco"
)

// Server exposes one SPATE engine over HTTP.
type Server struct {
	eng      *core.Engine
	sql      *sqlengine.Engine
	lc       *lifecycle.Manager // optional; see SetLifecycle
	streamer *core.Streamer     // optional; see SetStreamer
	cells    []gen.Cell
	window   telco.TimeRange
	mux      *http.ServeMux

	obs      *obs.Registry
	tracer   *obs.Tracer
	inflight *obs.Gauge
	handler  http.Handler
}

// NewServer wraps an ingested engine. cells may be nil (the /api/cells
// endpoint then serves an empty inventory); window is the trace's span,
// used as the default exploration window. The server reports per-endpoint
// request metrics into obs.Default and serves the registry at /metrics
// (Prometheus text), /api/stats (JSON) and /api/trace (recent spans).
func NewServer(eng *core.Engine, cells []gen.Cell, window telco.TimeRange) *Server {
	s := &Server{
		eng:    eng,
		sql:    sqlengine.NewEngine(tasks.Catalog(tasks.Spate{E: eng})),
		cells:  cells,
		window: window,
		mux:    http.NewServeMux(),
		obs:    obs.Default,
		tracer: obs.DefaultTracer,
	}
	s.inflight = s.obs.Gauge("spate_http_in_flight_requests", "HTTP requests currently being served.")
	s.mux.HandleFunc("GET /", s.handleIndex)
	s.mux.HandleFunc("GET /api/cells", s.handleCells)
	s.mux.HandleFunc("GET /api/explore", s.handleExplore)
	s.mux.HandleFunc("POST /api/append", s.handleAppend)
	s.mux.HandleFunc("GET /api/sql", s.handleSQL)
	s.mux.HandleFunc("GET /api/space", s.handleSpace)
	s.mux.HandleFunc("GET /api/template", s.handleTemplate)
	s.mux.HandleFunc("GET /api/playback", s.handlePlayback)
	s.mux.HandleFunc("GET /api/tree", s.handleTree)
	s.mux.HandleFunc("GET /api/lifecycle", s.handleLifecycleGet)
	s.mux.HandleFunc("POST /api/lifecycle", s.handleLifecyclePost)
	s.mux.Handle("GET /metrics", obs.MetricsHandler(s.obs))
	s.mux.HandleFunc("GET /api/stats", s.handleStats)
	s.mux.Handle("GET /api/trace", obs.TracesHandler(s.tracer))
	s.mux.Handle("GET /api/slowlog", obs.SlowLogHandler(obs.DefaultSlowLog))
	s.handler = s.middleware(s.mux)
	return s
}

// endpointLabel maps a request path to a bounded metric label, so hostile
// or junk paths cannot blow up series cardinality.
func endpointLabel(path string) string {
	switch path {
	case "/":
		return "index"
	case "/metrics", "/api/stats", "/api/trace", "/api/cells", "/api/explore",
		"/api/append", "/api/sql", "/api/space", "/api/template", "/api/playback",
		"/api/tree", "/api/health", "/api/lifecycle", "/api/slowlog":
		return path
	}
	if strings.HasPrefix(path, "/debug/pprof") {
		return "pprof"
	}
	return "other"
}

// statusRecorder captures the response status for the request counter.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (sr *statusRecorder) WriteHeader(code int) {
	sr.code = code
	sr.ResponseWriter.WriteHeader(code)
}

// middleware records per-endpoint request counts, latencies and the
// in-flight gauge, and roots a trace span so engine spans nest under the
// HTTP request in /api/trace.
func (s *Server) middleware(next http.Handler) http.Handler {
	return metricsMiddleware(s.obs, s.tracer, s.inflight, next)
}

// metricsMiddleware is the shared request-accounting wrapper of the
// single-engine and cluster servers. Besides the request counter and
// latency histogram it feeds the slow-query log (with the request's trace
// ID, so a slow entry links to its span tree) and exports a per-endpoint
// p99 latency gauge derived from the histogram.
func metricsMiddleware(reg *obs.Registry, tracer *obs.Tracer, inflight *obs.Gauge, next http.Handler) http.Handler {
	var mu sync.Mutex
	p99Registered := make(map[string]bool)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		inflight.Add(1)
		defer inflight.Add(-1)
		ep := endpointLabel(r.URL.Path)
		ctx, span := tracer.StartSpan(r.Context(), "http "+ep)
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		next.ServeHTTP(rec, r.WithContext(ctx))
		span.End()
		dur := time.Since(t0)
		reg.Counter("spate_http_requests_total",
			"HTTP requests served by endpoint and status code.",
			"endpoint", ep, "code", strconv.Itoa(rec.code)).Inc()
		hist := reg.Histogram("spate_http_request_seconds",
			"HTTP request latency by endpoint.", nil,
			"endpoint", ep)
		hist.Observe(dur.Seconds())
		mu.Lock()
		if !p99Registered[ep] {
			p99Registered[ep] = true
			reg.GaugeFunc("spate_http_p99_seconds",
				"99th percentile HTTP request latency by endpoint.",
				func() float64 { return hist.Quantile(0.99) },
				"endpoint", ep)
		}
		mu.Unlock()
		obs.DefaultSlowLog.Observe("http "+ep, r.URL.RequestURI(), span.TraceID(), dur,
			map[string]any{"code": rec.code})
	})
}

// TreeNodeJSON is one temporal-index node in the /api/tree response — the
// structure the UI's temporal navigation (drill down / roll up) walks.
type TreeNodeJSON struct {
	Level    string         `json:"level"`
	From     string         `json:"from,omitempty"`
	To       string         `json:"to,omitempty"`
	Sealed   bool           `json:"sealed"`
	Decayed  bool           `json:"decayed,omitempty"`
	Rows     int64          `json:"rows,omitempty"`
	Children []TreeNodeJSON `json:"children,omitempty"`
}

func (s *Server) handleTree(w http.ResponseWriter, _ *http.Request) {
	var convert func(n *index.Node) TreeNodeJSON
	convert = func(n *index.Node) TreeNodeJSON {
		out := TreeNodeJSON{
			Level:   n.Level.String(),
			Sealed:  n.Summary != nil,
			Decayed: n.Decayed,
		}
		if !n.Period.From.IsZero() {
			out.From = n.Period.From.Format(telco.TimeLayout)
			out.To = n.Period.To.Format(telco.TimeLayout)
		}
		if n.Summary != nil {
			out.Rows = n.Summary.Rows
		}
		for _, c := range n.Children {
			out.Children = append(out.Children, convert(c))
		}
		return out
	}
	writeJSON(w, convert(s.eng.Tree().Root()))
}

// Handler returns the HTTP handler (also usable under httptest), with the
// metrics middleware applied.
func (s *Server) Handler() http.Handler { return s.handler }

// SetAdmission fronts the API with a serving-tier admission controller:
// tenant resolution, rate limits, concurrency caps and load shedding.
// The admission layer sits inside the metrics middleware, so shed
// 429/503s still show up in the per-endpoint request metrics. Call
// before Handler is used; not safe to swap while serving.
func (s *Server) SetAdmission(ctl *serving.Controller) {
	s.handler = s.middleware(ctl.Middleware(s.mux))
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		slog.Error("webui: encode", "err", err)
	}
}

// httpErr writes a JSON error body. The Content-Type header must be set
// before WriteHeader — headers written after the status line are dropped.
func httpErr(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if encErr := json.NewEncoder(w).Encode(map[string]string{"error": err.Error()}); encErr != nil {
		slog.Error("webui: encode", "err", encErr)
	}
}

// CellJSON is the wire form of one cell.
type CellJSON struct {
	ID   int64   `json:"id"`
	X    float64 `json:"x"`
	Y    float64 `json:"y"`
	Tech string  `json:"tech,omitempty"`
}

func (s *Server) handleCells(w http.ResponseWriter, _ *http.Request) {
	out := make([]CellJSON, 0, len(s.cells))
	for _, c := range s.cells {
		out = append(out, CellJSON{ID: c.ID, X: c.Pt.X, Y: c.Pt.Y, Tech: c.Tech})
	}
	writeJSON(w, out)
}

// parseWindow reads from/to params as (possibly truncated) wire-layout
// timestamps; absent params default to the trace span.
func (s *Server) parseWindow(r *http.Request) (telco.TimeRange, error) {
	return parseWindowQuery(r, s.window)
}

func parseWindowQuery(r *http.Request, def telco.TimeRange) (telco.TimeRange, error) {
	from, to := def.From, def.To
	parse := func(v string) (time.Time, error) {
		if len(v) > len(telco.TimeLayout) || len(v) < 4 {
			return time.Time{}, fmt.Errorf("bad timestamp %q", v)
		}
		return time.ParseInLocation(telco.TimeLayout[:len(v)], v, time.UTC)
	}
	if v := r.URL.Query().Get("from"); v != "" {
		t, err := parse(v)
		if err != nil {
			return telco.TimeRange{}, err
		}
		from = t
	}
	if v := r.URL.Query().Get("to"); v != "" {
		t, err := parse(v)
		if err != nil {
			return telco.TimeRange{}, err
		}
		to = t
	}
	return telco.NewTimeRange(from, to), nil
}

// ExploreJSON is the wire form of an exploration answer.
type ExploreJSON struct {
	Level      string            `json:"covering_level"`
	Rows       int64             `json:"rows"`
	Decayed    int               `json:"decayed_leaves"`
	CacheHit   bool              `json:"cache_hit"`
	Cells      []ExploreCellJSON `json:"cells"`
	Highlights []HighlightJSON   `json:"highlights"`
	// Stages is the engine's per-stage timing breakdown in milliseconds
	// (plan, collect, leaf_decode, merge, restrict, row_fetch).
	Stages map[string]float64 `json:"stages_ms,omitempty"`
	// TraceID links the answer to its span tree at /api/trace?id=.
	TraceID string `json:"trace_id,omitempty"`
	// Profile is the per-query storage profile, included when the request
	// carries profile=1.
	Profile *core.Profile `json:"profile,omitempty"`
}

// ExploreCellJSON is one cell's aggregate in an exploration answer.
type ExploreCellJSON struct {
	ID    int64   `json:"id"`
	X     float64 `json:"x"`
	Y     float64 `json:"y"`
	Rows  int64   `json:"rows"`
	Value float64 `json:"value"`
}

// HighlightJSON is one highlight in an exploration answer.
type HighlightJSON struct {
	Attr  string  `json:"attr"`
	Kind  string  `json:"kind"`
	Value string  `json:"value,omitempty"`
	Freq  float64 `json:"freq,omitempty"`
	Peak  float64 `json:"peak,omitempty"`
}

// parseBoxQuery reads the minx/miny/maxx/maxy params; absent minx leaves
// the zero box ("everywhere").
func parseBoxQuery(r *http.Request) geo.Rect {
	get := func(k string) (float64, bool) {
		var f float64
		if _, err := fmt.Sscanf(r.URL.Query().Get(k), "%g", &f); err == nil {
			return f, true
		}
		return 0, false
	}
	if x1, ok := get("minx"); ok {
		y1, _ := get("miny")
		x2, _ := get("maxx")
		y2, _ := get("maxy")
		return geo.NewRect(x1, y1, x2, y2)
	}
	return geo.Rect{}
}

func (s *Server) handleExplore(w http.ResponseWriter, r *http.Request) {
	win, err := s.parseWindow(r)
	if err != nil {
		httpErr(w, http.StatusBadRequest, err)
		return
	}
	q := core.Query{Window: win, Box: parseBoxQuery(r)}
	res, err := s.eng.ExploreContext(r.Context(), q)
	if err != nil {
		httpErr(w, http.StatusInternalServerError, err)
		return
	}
	attr := r.URL.Query().Get("attr")
	out := ExploreJSON{
		Level: res.CoveringLevel.String(), Rows: res.Summary.Rows,
		Decayed: res.DecayedLeaves, CacheHit: res.CacheHit,
		TraceID: res.Profile.TraceID,
	}
	if r.URL.Query().Get("profile") == "1" {
		p := res.Profile
		out.Profile = &p
	}
	for _, st := range res.Stages {
		if out.Stages == nil {
			out.Stages = make(map[string]float64, len(res.Stages))
		}
		out.Stages[st.Name] = float64(st.Duration) / float64(time.Millisecond)
	}
	out.Cells = cellsJSON(res.Cells, attr)
	out.Highlights = highlightsJSON(res.Highlights)
	writeJSON(w, out)
}

func cellsJSON(cells []core.CellSeries, attr string) []ExploreCellJSON {
	var out []ExploreCellJSON
	for _, cs := range cells {
		cj := ExploreCellJSON{ID: cs.CellID, X: cs.Loc.X, Y: cs.Loc.Y, Rows: cs.Rows}
		for ref, st := range cs.Attr {
			if attr == "" || ref.String() == attr {
				cj.Value = st.Sum
				if attr != "" {
					break
				}
			}
		}
		out = append(out, cj)
	}
	return out
}

func highlightsJSON(hs []highlights.Highlight) []HighlightJSON {
	var out []HighlightJSON
	for _, h := range hs {
		hj := HighlightJSON{Attr: h.Attr.String(), Value: h.Value, Freq: h.Frequency, Peak: h.PeakValue}
		if h.Kind == highlights.Categorical {
			hj.Kind = "categorical"
		} else {
			hj.Kind = "peak"
		}
		out = append(out, hj)
	}
	return out
}

func (s *Server) handleSQL(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query().Get("q")
	if q == "" {
		httpErr(w, http.StatusBadRequest, fmt.Errorf("missing q parameter"))
		return
	}
	rs, err := s.sql.QueryContext(r.Context(), q)
	if err != nil {
		httpErr(w, http.StatusBadRequest, err)
		return
	}
	rows := make([][]string, len(rs.Rows))
	for i, row := range rs.Rows {
		rows[i] = make([]string, len(row))
		for j, v := range row {
			rows[i][j] = v.Format()
		}
	}
	writeJSON(w, map[string]any{"cols": rs.Cols, "rows": rows})
}

// handleStats serves the obs registry's JSON mirror extended with two
// synthetic families from the engine's columnar ingest: per-column codec
// wins (spate_column_codec_chunks, labelled table/column/codec) and the
// mean per-chunk entropy that drove each choice
// (spate_column_entropy_bits). Both are derived on demand from
// Engine.ColumnCodecStats rather than registered, so they never go stale
// and cost nothing when no v3 segment has been written.
func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, statsWithColumnCodecs(s.obs, s.eng))
}

func statsWithColumnCodecs(reg *obs.Registry, eng *core.Engine) []obs.Metric {
	snap := reg.Snapshot()
	cs := eng.ColumnCodecStats()
	if len(cs) == 0 {
		return snap
	}
	chunks := obs.Metric{
		Name: "spate_column_codec_chunks", Type: "counter",
		Help: "Chunks won by each column codec during columnar (v3) ingest.",
	}
	entropy := obs.Metric{
		Name: "spate_column_entropy_bits", Type: "gauge",
		Help: "Mean per-chunk value entropy per column, in bits.",
	}
	for _, st := range cs {
		for _, cc := range []struct {
			codec string
			n     int
		}{{"plain", st.PlainChunks}, {"dict", st.DictChunks}, {"delta", st.DeltaChunks}} {
			if cc.n == 0 {
				continue
			}
			chunks.Series = append(chunks.Series, obs.Series{
				Labels: map[string]string{"table": st.Table, "column": st.Column, "codec": cc.codec},
				Value:  float64(cc.n),
			})
		}
		entropy.Series = append(entropy.Series, obs.Series{
			Labels: map[string]string{"table": st.Table, "column": st.Column},
			Value:  st.EntropyBits,
		})
	}
	return append(snap, chunks, entropy)
}

func (s *Server) handleSpace(w http.ResponseWriter, _ *http.Request) {
	sp := s.eng.Space()
	u := s.eng.FS().Usage()
	writeJSON(w, map[string]any{
		"raw_bytes":               sp.RawBytes,
		"comp_bytes":              sp.CompBytes,
		"summary_bytes":           sp.SummaryBytes,
		"stored_bytes":            u.StoredBytes,
		"under_replicated_blocks": u.UnderReplicatedBlocks,
		"o1":                      sp.O1,
	})
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprintf(w, indexHTML,
		s.window.From.Format(telco.TimeLayout), s.window.To.Format(telco.TimeLayout))
}
