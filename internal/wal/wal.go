// Package wal implements the write-ahead log under SPATE's streaming
// ingest path: a segmented append-only log of length-prefixed CRC-32
// records on the local file system. Appends are cheap buffered writes;
// durability is a separate step — Commit — so many concurrent appenders
// share one fsync (group commit). On reopen the log replays every intact
// record and truncates a torn tail (the partially written record of a
// crash mid-append), which is exactly the prefix-durability contract a
// crash-recovering memtable needs.
//
// The wire format of one record is
//
//	[4B little-endian payload length][4B little-endian CRC-32 (IEEE) of payload][payload]
//
// and a segment file (wal-%016d.log) is a plain concatenation of records.
// Rotation closes (flush + fsync) the active segment and opens the next
// id, so every record of a non-active segment is durable; Purge deletes
// closed segments the caller has sealed past.
package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"spate/internal/obs"
)

// SyncPolicy selects when appended records become durable.
type SyncPolicy int

const (
	// SyncGroup (default) makes Commit block until a background notifier
	// fsyncs the segment; concurrent commits coalesce into one fsync.
	SyncGroup SyncPolicy = iota
	// SyncAlways fsyncs inside every Append before it returns; Commit is a
	// no-op. The slowest and strongest policy.
	SyncAlways
	// SyncNone never fsyncs (the OS flushes on its own schedule); Commit
	// only waits for the user-space buffer to reach the kernel. Crash
	// durability is sacrificed for throughput — replay still recovers every
	// record the kernel wrote out.
	SyncNone
)

// Options configures a log. The zero value is usable: group commit with a
// 2 ms window and 8 MiB segments.
type Options struct {
	// SegmentBytes rotates the active segment once it exceeds this size
	// (default 8 MiB). Records never split across segments.
	SegmentBytes int64
	// Sync selects the durability policy (default SyncGroup).
	Sync SyncPolicy
	// GroupWindow is how long the group-commit notifier accumulates
	// waiters before fsyncing (default 2 ms). Shorter windows lower commit
	// latency; longer windows amortize the fsync across more appends.
	GroupWindow time.Duration
	// Obs selects the metrics registry (default obs.Default).
	Obs *obs.Registry
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 8 << 20
	}
	if o.GroupWindow <= 0 {
		o.GroupWindow = 2 * time.Millisecond
	}
	if o.Obs == nil {
		o.Obs = obs.Default
	}
	return o
}

// Pos addresses one record in the log: the segment id and the byte offset
// of the record's end within that segment. Positions order
// lexicographically (segment, then offset).
type Pos struct {
	Seg uint64
	Off int64
}

// Less reports whether p is strictly before q.
func (p Pos) Less(q Pos) bool {
	if p.Seg != q.Seg {
		return p.Seg < q.Seg
	}
	return p.Off < q.Off
}

// ErrClosed is returned by operations on a closed log.
var ErrClosed = errors.New("wal: log closed")

// ErrCorrupt marks a record that failed its CRC or framing before the
// final segment's tail — data loss the log cannot repair by truncation.
var ErrCorrupt = errors.New("wal: corrupt record")

const (
	recHeader  = 8 // 4B length + 4B CRC
	maxPayload = 64 << 20
)

// SegmentInfo describes one on-disk segment.
type SegmentInfo struct {
	ID    uint64
	Bytes int64
	// Active marks the segment currently receiving appends.
	Active bool
}

type waiter struct {
	pos Pos
	ch  chan error
}

// Log is a segmented write-ahead log. All methods are safe for concurrent
// use.
type Log struct {
	dir  string
	opts Options

	mu     sync.Mutex
	f      *os.File
	w      *bufio.Writer
	seg    uint64 // active segment id
	off    int64  // bytes appended to the active segment
	segs   map[uint64]int64
	closed bool

	// group-commit notifier state
	waiters []waiter
	durable Pos // highest position known fsynced
	kick    chan struct{}
	done    chan struct{}

	met logMetrics
}

type logMetrics struct {
	appends   *obs.Counter
	bytes     *obs.Counter
	fsyncs    *obs.Counter
	rotations *obs.Counter
	purged    *obs.Counter
	truncated *obs.Counter
	replayed  *obs.Counter
	segments  *obs.Gauge
	groupSize *obs.Histogram
}

func segName(id uint64) string { return fmt.Sprintf("wal-%016d.log", id) }

// Open opens (or creates) the log in dir, scanning existing segments and
// truncating a torn tail off the newest one so the next Append lands on a
// record boundary. Replay may be called before the first Append to
// recover the surviving records.
func Open(dir string, opts Options) (*Log, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	l := &Log{
		dir:  dir,
		opts: opts,
		segs: make(map[uint64]int64),
		kick: make(chan struct{}, 1),
		done: make(chan struct{}),
	}
	r := opts.Obs
	l.met = logMetrics{
		appends:   r.Counter("spate_wal_appends_total", "Records appended to the write-ahead log."),
		bytes:     r.Counter("spate_wal_append_bytes_total", "Payload bytes appended to the write-ahead log."),
		fsyncs:    r.Counter("spate_wal_fsyncs_total", "fsync calls issued by the write-ahead log."),
		rotations: r.Counter("spate_wal_rotations_total", "Segment rotations."),
		purged:    r.Counter("spate_wal_purged_segments_total", "Sealed segments deleted by Purge."),
		truncated: r.Counter("spate_wal_torn_truncations_total", "Torn tails truncated during open."),
		replayed:  r.Counter("spate_wal_replayed_records_total", "Records recovered by Replay."),
		groupSize: r.Histogram("spate_wal_group_commit_records", "Records made durable per fsync.", obs.ExpBuckets(1, 2, 12)),
	}
	ids, err := l.scan()
	if err != nil {
		return nil, err
	}
	active := uint64(1)
	if n := len(ids); n > 0 {
		active = ids[n-1]
		// The newest segment may end in a torn record from a crash
		// mid-append; truncate it back to the last intact boundary.
		good, torn, err := validate(filepath.Join(dir, segName(active)))
		if err != nil {
			return nil, err
		}
		if torn {
			if err := os.Truncate(filepath.Join(dir, segName(active)), good); err != nil {
				return nil, fmt.Errorf("wal: truncate torn tail: %w", err)
			}
			l.met.truncated.Inc()
		}
		l.segs[active] = good
	}
	f, err := os.OpenFile(filepath.Join(dir, segName(active)), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	l.f, l.w = f, bufio.NewWriterSize(f, 64<<10)
	l.seg, l.off = active, l.segs[active]
	l.segs[active] = l.off
	// Everything recovered from disk is durable by definition.
	l.durable = Pos{Seg: active, Off: l.off}
	r.GaugeFunc("spate_wal_segments", "Live write-ahead log segments on disk.", func() float64 {
		l.mu.Lock()
		defer l.mu.Unlock()
		return float64(len(l.segs))
	})
	go l.syncLoop()
	return l, nil
}

// scan lists segment ids in ascending order and records their sizes.
func (l *Log) scan() ([]uint64, error) {
	ents, err := os.ReadDir(l.dir)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	var ids []uint64
	for _, e := range ents {
		var id uint64
		if _, err := fmt.Sscanf(e.Name(), "wal-%016d.log", &id); err != nil {
			continue
		}
		fi, err := e.Info()
		if err != nil {
			return nil, fmt.Errorf("wal: %w", err)
		}
		ids = append(ids, id)
		l.segs[id] = fi.Size()
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids, nil
}

// validate walks one segment and returns the offset of the last intact
// record boundary, and whether bytes beyond it exist (a torn tail).
func validate(path string) (good int64, torn bool, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return 0, false, nil
		}
		return 0, false, fmt.Errorf("wal: %w", err)
	}
	off := int64(0)
	for {
		payload, n := nextRecord(data[off:])
		if n <= 0 {
			break
		}
		_ = payload
		off += int64(n)
	}
	return off, off < int64(len(data)), nil
}

// nextRecord decodes one record from the head of data. It returns the
// payload and the total encoded size, or n <= 0 when no intact record
// starts at data[0] (truncated header, truncated payload, oversized
// length, or CRC mismatch).
func nextRecord(data []byte) (payload []byte, n int) {
	if len(data) < recHeader {
		return nil, 0
	}
	ln := binary.LittleEndian.Uint32(data)
	crc := binary.LittleEndian.Uint32(data[4:])
	if int64(ln) > maxPayload || recHeader+int(ln) > len(data) {
		return nil, 0
	}
	payload = data[recHeader : recHeader+int(ln)]
	if crc32.ChecksumIEEE(payload) != crc {
		return nil, 0
	}
	return payload, recHeader + int(ln)
}

// appendRecord encodes one record into dst.
func appendRecord(dst []byte, payload []byte) []byte {
	var hdr [recHeader]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(payload))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// Replay streams every intact record in log order through fn. It is meant
// to run right after Open, before new appends interleave; fn returning an
// error aborts the replay. A CRC failure anywhere but the already
// truncated tail returns ErrCorrupt.
func (l *Log) Replay(fn func(pos Pos, payload []byte) error) error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	ids := make([]uint64, 0, len(l.segs))
	for id := range l.segs {
		ids = append(ids, id)
	}
	l.w.Flush()
	l.mu.Unlock()
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		data, err := os.ReadFile(filepath.Join(l.dir, segName(id)))
		if err != nil {
			return fmt.Errorf("wal: replay: %w", err)
		}
		off := int64(0)
		for off < int64(len(data)) {
			payload, n := nextRecord(data[off:])
			if n <= 0 {
				// Open truncated the final segment's torn tail, so any
				// undecodable record here is real corruption.
				return fmt.Errorf("%w: segment %d offset %d", ErrCorrupt, id, off)
			}
			off += int64(n)
			l.met.replayed.Inc()
			if err := fn(Pos{Seg: id, Off: off}, payload); err != nil {
				return err
			}
		}
	}
	return nil
}

// Append writes one record and returns its position. The record is NOT
// durable until Commit(pos) returns (or immediately under SyncAlways).
func (l *Log) Append(payload []byte) (Pos, error) {
	rec := appendRecord(make([]byte, 0, recHeader+len(payload)), payload)
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return Pos{}, ErrClosed
	}
	if l.off > 0 && l.off+int64(len(rec)) > l.opts.SegmentBytes {
		if err := l.rotateLocked(); err != nil {
			l.mu.Unlock()
			return Pos{}, err
		}
	}
	if _, err := l.w.Write(rec); err != nil {
		l.mu.Unlock()
		return Pos{}, fmt.Errorf("wal: append: %w", err)
	}
	l.off += int64(len(rec))
	l.segs[l.seg] = l.off
	pos := Pos{Seg: l.seg, Off: l.off}
	var ferr error
	if l.opts.Sync == SyncAlways {
		ferr = l.flushLocked(true)
	}
	l.mu.Unlock()
	l.met.appends.Inc()
	l.met.bytes.Add(int64(len(payload)))
	if ferr != nil {
		return Pos{}, ferr
	}
	return pos, nil
}

// Commit blocks until every record at or before pos is durable under the
// log's sync policy. Under SyncGroup concurrent commits coalesce into one
// fsync; under SyncNone it only drains the user-space buffer.
func (l *Log) Commit(pos Pos) error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	switch l.opts.Sync {
	case SyncAlways:
		l.mu.Unlock()
		return nil // Append already synced
	case SyncNone:
		err := l.flushLocked(false)
		l.mu.Unlock()
		return err
	}
	if !l.durable.Less(pos) {
		l.mu.Unlock()
		return nil
	}
	ch := make(chan error, 1)
	l.waiters = append(l.waiters, waiter{pos: pos, ch: ch})
	l.mu.Unlock()
	select {
	case l.kick <- struct{}{}:
	default:
	}
	return <-ch
}

// syncLoop is the group-commit notifier: it wakes on the first waiter,
// lingers GroupWindow so stragglers join the batch, fsyncs once, and
// completes every waiter the new durable watermark covers.
func (l *Log) syncLoop() {
	for {
		select {
		case <-l.done:
			return
		case <-l.kick:
		}
		if l.opts.GroupWindow > 0 {
			timer := time.NewTimer(l.opts.GroupWindow)
			select {
			case <-timer.C:
			case <-l.done:
				timer.Stop()
				return
			}
		}
		l.mu.Lock()
		if l.closed {
			l.mu.Unlock()
			return
		}
		err := l.flushLocked(true)
		var batch []waiter
		if err == nil {
			keep := l.waiters[:0]
			for _, w := range l.waiters {
				if !l.durable.Less(w.pos) {
					batch = append(batch, w)
				} else {
					keep = append(keep, w)
				}
			}
			l.waiters = keep
		} else {
			batch, l.waiters = l.waiters, nil
		}
		l.mu.Unlock()
		if len(batch) > 0 {
			l.met.groupSize.Observe(float64(len(batch)))
		}
		for _, w := range batch {
			w.ch <- err
		}
	}
}

// flushLocked drains the buffer and, when sync is set, fsyncs the active
// segment and advances the durable watermark. Caller holds l.mu.
func (l *Log) flushLocked(sync bool) error {
	if err := l.w.Flush(); err != nil {
		return fmt.Errorf("wal: flush: %w", err)
	}
	if !sync {
		return nil
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: fsync: %w", err)
	}
	l.met.fsyncs.Inc()
	l.durable = Pos{Seg: l.seg, Off: l.off}
	return nil
}

// rotateLocked seals the active segment (flush + fsync + close) and opens
// the next id. Caller holds l.mu. Because rotation syncs, every record of
// a non-active segment is durable.
func (l *Log) rotateLocked() error {
	if err := l.flushLocked(true); err != nil {
		return err
	}
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("wal: rotate close: %w", err)
	}
	l.seg++
	f, err := os.OpenFile(filepath.Join(l.dir, segName(l.seg)), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("wal: rotate open: %w", err)
	}
	l.f = f
	l.w.Reset(f)
	l.off = 0
	l.segs[l.seg] = 0
	l.durable = Pos{Seg: l.seg, Off: 0}
	l.met.rotations.Inc()
	return nil
}

// Sync forces an immediate flush + fsync regardless of policy.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	return l.flushLocked(true)
}

// ActiveSegment returns the id of the segment currently receiving appends.
func (l *Log) ActiveSegment() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seg
}

// Segments lists the on-disk segments in id order.
func (l *Log) Segments() []SegmentInfo {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]SegmentInfo, 0, len(l.segs))
	for id, sz := range l.segs {
		out = append(out, SegmentInfo{ID: id, Bytes: sz, Active: id == l.seg})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Purge deletes every closed segment with id <= upTo. The active segment
// is never deleted — callers purge after sealing, and sealed records only
// ever live in closed segments or the still-growing active one.
func (l *Log) Purge(upTo uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	for id := range l.segs {
		if id > upTo || id == l.seg {
			continue
		}
		if err := os.Remove(filepath.Join(l.dir, segName(id))); err != nil && !errors.Is(err, os.ErrNotExist) {
			return fmt.Errorf("wal: purge: %w", err)
		}
		delete(l.segs, id)
		l.met.purged.Inc()
	}
	return nil
}

// Close flushes, fsyncs and closes the log. Pending group commits are
// completed by the final sync.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	err := l.flushLocked(true)
	l.closed = true
	batch := l.waiters
	l.waiters = nil
	cerr := l.f.Close()
	l.mu.Unlock()
	close(l.done)
	for _, w := range batch {
		w.ch <- err
	}
	if err != nil {
		return err
	}
	if cerr != nil {
		return fmt.Errorf("wal: close: %w", cerr)
	}
	return nil
}
