package wal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func openTest(t *testing.T, dir string, opts Options) *Log {
	t.Helper()
	l, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// replayAll collects every surviving payload in log order.
func replayAll(t *testing.T, l *Log) [][]byte {
	t.Helper()
	var out [][]byte
	err := l.Replay(func(_ Pos, payload []byte) error {
		out = append(out, append([]byte(nil), payload...))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestAppendCommitReplayRoundtrip(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, dir, Options{Sync: SyncNone})
	var want [][]byte
	for i := 0; i < 100; i++ {
		p := []byte(fmt.Sprintf("record-%03d|payload", i))
		want = append(want, p)
		pos, err := l.Append(p)
		if err != nil {
			t.Fatal(err)
		}
		if i == 99 {
			if err := l.Commit(pos); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l = openTest(t, dir, Options{Sync: SyncNone})
	defer l.Close()
	got := replayAll(t, l)
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestRotationKeepsOrderAcrossSegments(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, dir, Options{Sync: SyncNone, SegmentBytes: 256})
	n := 50
	for i := 0; i < n; i++ {
		if _, err := l.Append([]byte(fmt.Sprintf("rotating-record-%03d", i))); err != nil {
			t.Fatal(err)
		}
	}
	segs := l.Segments()
	if len(segs) < 2 {
		t.Fatalf("expected rotation, got %d segments", len(segs))
	}
	if !segs[len(segs)-1].Active {
		t.Error("last segment not active")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l = openTest(t, dir, Options{Sync: SyncNone, SegmentBytes: 256})
	defer l.Close()
	got := replayAll(t, l)
	if len(got) != n {
		t.Fatalf("replayed %d records, want %d", len(got), n)
	}
	for i, p := range got {
		if want := fmt.Sprintf("rotating-record-%03d", i); string(p) != want {
			t.Fatalf("record %d = %q, want %q", i, p, want)
		}
	}
}

func TestTornTailTruncatedOnOpen(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, dir, Options{Sync: SyncNone})
	for i := 0; i < 10; i++ {
		if _, err := l.Append([]byte(fmt.Sprintf("intact-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Crash mid-append: a full record followed by a torn one (its length
	// header promises more bytes than exist).
	path := filepath.Join(dir, segName(1))
	full := appendRecord(nil, []byte("intact-10"))
	torn := appendRecord(nil, []byte("this record will be cut"))
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write(full)
	f.Write(torn[:len(torn)-5])
	f.Close()

	l = openTest(t, dir, Options{Sync: SyncNone})
	defer l.Close()
	got := replayAll(t, l)
	if len(got) != 11 {
		t.Fatalf("replayed %d records, want 11 (torn tail kept?)", len(got))
	}
	if string(got[10]) != "intact-10" {
		t.Fatalf("last record = %q", got[10])
	}
	// New appends land cleanly on the truncated boundary.
	if _, err := l.Append([]byte("after-recovery")); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	got = replayAll(t, l)
	if len(got) != 12 || string(got[11]) != "after-recovery" {
		t.Fatalf("after recovery replay = %d records, last %q", len(got), got[len(got)-1])
	}
}

func TestMidRotationCrashRecoversClosedSegments(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, dir, Options{Sync: SyncNone, SegmentBytes: 128})
	n := 30
	for i := 0; i < n; i++ {
		if _, err := l.Append([]byte(fmt.Sprintf("seg-crossing-record-%03d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if len(l.Segments()) < 3 {
		t.Fatalf("want >= 3 segments, got %d", len(l.Segments()))
	}
	active := l.ActiveSegment()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Crash right after rotation: the new active segment exists but holds
	// only a torn fragment of its first record.
	frag := appendRecord(nil, []byte("first-record-of-new-segment"))
	if err := os.WriteFile(filepath.Join(dir, segName(active+1)), frag[:6], 0o644); err != nil {
		t.Fatal(err)
	}

	l = openTest(t, dir, Options{Sync: SyncNone, SegmentBytes: 128})
	defer l.Close()
	got := replayAll(t, l)
	if len(got) != n {
		t.Fatalf("replayed %d records, want %d", len(got), n)
	}
	if l.ActiveSegment() != active+1 {
		t.Errorf("active segment = %d, want %d", l.ActiveSegment(), active+1)
	}
}

func TestCorruptMiddleSegmentFailsReplay(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, dir, Options{Sync: SyncNone, SegmentBytes: 128})
	for i := 0; i < 30; i++ {
		if _, err := l.Append([]byte(fmt.Sprintf("record-%03d-some-padding", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Flip a payload byte inside the FIRST segment: not a torn tail, so
	// open succeeds (only the newest segment is tail-validated) but replay
	// must refuse to skip silently.
	path := filepath.Join(dir, segName(1))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[recHeader+2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	l = openTest(t, dir, Options{Sync: SyncNone, SegmentBytes: 128})
	defer l.Close()
	err = l.Replay(func(Pos, []byte) error { return nil })
	if err == nil {
		t.Fatal("replay accepted a corrupt record")
	}
}

func TestPurgeDeletesOnlyClosedSealedSegments(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, dir, Options{Sync: SyncNone, SegmentBytes: 128})
	defer l.Close()
	for i := 0; i < 30; i++ {
		if _, err := l.Append([]byte(fmt.Sprintf("purgeable-record-%03d", i))); err != nil {
			t.Fatal(err)
		}
	}
	segs := l.Segments()
	if len(segs) < 3 {
		t.Fatalf("want >= 3 segments, got %d", len(segs))
	}
	active := l.ActiveSegment()

	// Purge everything, active included in the range: the active segment
	// must survive.
	if err := l.Purge(active); err != nil {
		t.Fatal(err)
	}
	segs = l.Segments()
	if len(segs) != 1 || segs[0].ID != active {
		t.Fatalf("segments after purge = %+v, want only active %d", segs, active)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("%d files on disk after purge, want 1", len(ents))
	}
	// Appends continue after purge.
	if _, err := l.Append([]byte("post-purge")); err != nil {
		t.Fatal(err)
	}
}

func TestGroupCommitConcurrentAppends(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, dir, Options{Sync: SyncGroup, GroupWindow: 500 * 1000})
	const goroutines, perG = 8, 50
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				pos, err := l.Append([]byte(fmt.Sprintf("g%d-r%d", g, i)))
				if err == nil {
					err = l.Commit(pos)
				}
				if err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l = openTest(t, dir, Options{})
	defer l.Close()
	if got := replayAll(t, l); len(got) != goroutines*perG {
		t.Fatalf("replayed %d records, want %d", len(got), goroutines*perG)
	}
}

func TestCommitAfterCloseFails(t *testing.T) {
	l := openTest(t, t.TempDir(), Options{Sync: SyncNone})
	pos, err := l.Append([]byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append([]byte("y")); err != ErrClosed {
		t.Errorf("Append after close = %v, want ErrClosed", err)
	}
	if err := l.Commit(pos); err != ErrClosed {
		t.Errorf("Commit after close = %v, want ErrClosed", err)
	}
}

// FuzzRecordDecode drives the record decoder with arbitrary bytes: it must
// never panic, never report a size beyond the input, and must roundtrip
// every payload the encoder produces.
func FuzzRecordDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("short"))
	f.Add(appendRecord(nil, []byte("a valid record")))
	f.Add(appendRecord(appendRecord(nil, []byte("two")), []byte("records")))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0}) // oversized length
	f.Fuzz(func(t *testing.T, data []byte) {
		payload, n := nextRecord(data)
		if n < 0 || n > len(data) {
			t.Fatalf("nextRecord size %d out of range [0,%d]", n, len(data))
		}
		if n > 0 {
			// A decoded record must re-encode to exactly the bytes consumed.
			if enc := appendRecord(nil, payload); !bytes.Equal(enc, data[:n]) {
				t.Fatalf("re-encode mismatch: %x != %x", enc, data[:n])
			}
		}
		// Any payload the encoder writes must decode back intact.
		enc := appendRecord(nil, data)
		got, n2 := nextRecord(enc)
		if n2 != len(enc) || !bytes.Equal(got, data) {
			t.Fatalf("encoder roundtrip failed: n=%d payload=%x", n2, got)
		}
	})
}
