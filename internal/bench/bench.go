// Package bench regenerates every table and figure of the SPATE paper's
// evaluation (§IV-C Table I, §II-B Figure 4, §VIII Figures 7–12 and the
// §VIII-C storage totals), plus the ablation studies DESIGN.md calls out.
// Each experiment builds the needed frameworks over a synthetic trace and
// prints the same rows/series the paper reports; absolute numbers differ
// from the authors' 4-node cluster, but the comparative shape is the
// reproduction target.
package bench

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"spate/internal/compute"
	"spate/internal/core"
	"spate/internal/dfs"
	"spate/internal/gen"
	"spate/internal/raw"
	"spate/internal/shahed"
	"spate/internal/snapshot"
	"spate/internal/tasks"
	"spate/internal/telco"

	_ "spate/internal/compress/all"
)

// Options parameterizes an experiment run.
type Options struct {
	// Scale is the generator scale in (0,1]; 1 approximates the paper's
	// 5 GB week (too large for a laptop bench — 0.02..0.1 is practical).
	Scale float64
	// Days is the trace length in days (the paper's trace spans 7).
	Days int
	// Iterations averages response-time measurements (paper: 5).
	Iterations int
	// Workers is the compute-pool parallelism for T6–T8.
	Workers int
	// Dir is the scratch directory for DFS clusters; empty = os.TempDir.
	Dir string
	// Seed drives the generator.
	Seed int64
	// Clients is the concurrent client-fleet size for the serving-tier
	// herd experiment.
	Clients int
	// ZipfS is the zipf skew (>1) for the herd's hot-window draw.
	ZipfS float64
	// TenantMix assigns clients to tenants, e.g. "gold:2,bronze"; empty
	// runs the whole fleet as the default tenant.
	TenantMix string
	// URL points the herd at a live spate-server instead of an
	// in-process one (engine-side cache counters become unavailable).
	URL string
}

func (o Options) withDefaults() Options {
	if o.Scale <= 0 {
		o.Scale = 0.02
	}
	if o.Days <= 0 {
		o.Days = 2
	}
	if o.Iterations <= 0 {
		o.Iterations = 3
	}
	if o.Workers <= 0 {
		o.Workers = 2
	}
	if o.Dir == "" {
		o.Dir = os.TempDir()
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Clients <= 0 {
		o.Clients = 8
	}
	if o.ZipfS <= 1 {
		o.ZipfS = 1.3
	}
	return o
}

func (o Options) genConfig() gen.Config {
	cfg := gen.DefaultConfig(o.Scale)
	cfg.Seed = o.Seed
	return cfg
}

// Table is a printable experiment result.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "\n== %s ==\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				fmt.Fprint(w, "  ")
			}
			fmt.Fprintf(w, "%-*s", widths[i], c)
		}
		fmt.Fprintln(w)
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
}

// fmtDur renders a duration with millisecond precision.
func fmtDur(d time.Duration) string {
	return fmt.Sprintf("%.3fs", d.Seconds())
}

// fmtMB renders bytes as megabytes.
func fmtMB(b int64) string {
	return fmt.Sprintf("%.2fMB", float64(b)/(1<<20))
}

// World holds the three frameworks ingested over one epoch sequence.
type World struct {
	Gen   *gen.Generator
	Cfg   gen.Config
	FWs   []tasks.Framework
	Pool  *compute.Pool
	Start time.Time
	// AvgIngest tracks per-framework mean ingestion time per snapshot.
	AvgIngest map[string]time.Duration
	dirs      []string
}

// Close removes the world's scratch directories.
func (w *World) Close() {
	for _, d := range w.dirs {
		os.RemoveAll(d)
	}
}

// Framework returns the named framework.
func (w *World) Framework(name string) tasks.Framework {
	for _, f := range w.FWs {
		if f.Name() == name {
			return f
		}
	}
	return nil
}

// epochCounter provides unique scratch dir names.
var worldSeq int

// benchClusterConfig models the paper's testbed storage: 3-way replicated
// blocks on slow virtualized RAID-5 disks (writes ~25 MB/s per replica)
// with faster sequential reads (~150 MB/s). The asymmetry is what makes
// compression pay at ingest (fewer replicated bytes) while decompression
// still costs on reads — the trade the paper's Figures 7 and 11 show.
func benchClusterConfig() dfs.Config {
	return dfs.Config{
		BlockSize: 8 << 20, DataNodes: 4, Replication: 3,
		WriteMBps: 25, ReadMBps: 150,
	}
}

// BuildWorld generates the trace's snapshots for the given epochs and
// ingests them into fresh RAW, SHAHED and SPATE instances, each on its own
// DFS cluster (as in the paper's testbed, where each framework stores its
// own representation). SPATE runs with the supplied engine options.
func BuildWorld(o Options, epochs []telco.Epoch, spateOpts core.Options) (*World, error) {
	o = o.withDefaults()
	g := gen.New(o.genConfig())
	w := &World{
		Gen: g, Cfg: g.Config(), Pool: compute.NewPool(o.Workers),
		Start: g.Config().Start, AvgIngest: map[string]time.Duration{},
	}
	mk := func() (*dfs.Cluster, error) {
		worldSeq++
		dir := filepath.Join(o.Dir, fmt.Sprintf("spate-bench-%d-%d", os.Getpid(), worldSeq))
		w.dirs = append(w.dirs, dir)
		return dfs.NewCluster(dir, benchClusterConfig())
	}
	fsRaw, err := mk()
	if err != nil {
		return nil, err
	}
	fsSh, err := mk()
	if err != nil {
		return nil, err
	}
	fsSp, err := mk()
	if err != nil {
		return nil, err
	}
	rw, err := raw.Open(fsRaw, g.CellTable())
	if err != nil {
		return nil, err
	}
	sh, err := shahed.Open(fsSh, g.CellTable())
	if err != nil {
		return nil, err
	}
	eng, err := core.Open(fsSp, g.CellTable(), spateOpts)
	if err != nil {
		return nil, err
	}
	w.FWs = []tasks.Framework{tasks.Raw{S: rw}, tasks.Shahed{S: sh}, tasks.Spate{E: eng}}

	totals := map[string]time.Duration{}
	for _, e := range epochs {
		sn := snapshot.New(e)
		sn.Add(g.CDRTable(e))
		sn.Add(g.NMSTable(e))
		for _, f := range w.FWs {
			st, err := f.Ingest(sn)
			if err != nil {
				w.Close()
				return nil, fmt.Errorf("bench: %s ingest %v: %w", f.Name(), e, err)
			}
			totals[f.Name()] += st.Total
		}
	}
	for _, f := range w.FWs {
		f.Finish()
		if len(epochs) > 0 {
			w.AvgIngest[f.Name()] = totals[f.Name()] / time.Duration(len(epochs))
		}
	}
	return w, nil
}

// TraceEpochs returns the trace's epoch sequence: days consecutive days
// from the generator start.
func TraceEpochs(cfg gen.Config, days int) []telco.Epoch {
	e0 := telco.EpochOf(cfg.Start)
	out := make([]telco.Epoch, 0, days*telco.EpochsPerDay)
	for i := 0; i < days*telco.EpochsPerDay; i++ {
		out = append(out, e0+telco.Epoch(i))
	}
	return out
}

// DayPeriod names one of the paper's four day-period datasets (§VII-C).
type DayPeriod struct {
	Name     string
	From, To int // hours [From, To); wraps over midnight when From > To
}

// DayPeriods are the paper's Morning/Afternoon/Evening/Night partitions.
var DayPeriods = []DayPeriod{
	{"Morning", 5, 12},
	{"Afternoon", 12, 17},
	{"Evening", 17, 21},
	{"Night", 21, 5},
}

// FilterByPeriod keeps epochs whose start hour falls in the period.
func FilterByPeriod(epochs []telco.Epoch, p DayPeriod) []telco.Epoch {
	var out []telco.Epoch
	for _, e := range epochs {
		h := e.Start().Hour()
		in := false
		if p.From <= p.To {
			in = h >= p.From && h < p.To
		} else {
			in = h >= p.From || h < p.To
		}
		if in {
			out = append(out, e)
		}
	}
	return out
}

// FilterByWeekday keeps epochs on the given weekday (the paper's seven
// Mon..Sun zones, §VII-C).
func FilterByWeekday(epochs []telco.Epoch, wd time.Weekday) []telco.Epoch {
	var out []telco.Epoch
	for _, e := range epochs {
		if e.Start().Weekday() == wd {
			out = append(out, e)
		}
	}
	return out
}
