// Serving-tier experiment: a zipf-skewed concurrent client fleet hammers
// an admission-fronted server over a handful of hot windows. The numbers
// to watch are evaluations per hot window (the shared result cache plus
// singleflight should collapse the herd onto roughly one evaluation each),
// the shed fraction, and the spread of Retry-After hints on the shed
// remainder (honest hints are spaced over the refill schedule, never one
// constant).
package bench

import (
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"spate/internal/core"
	"spate/internal/dfs"
	"spate/internal/gen"
	"spate/internal/obs"
	"spate/internal/serving"
	"spate/internal/snapshot"
	"spate/internal/telco"
	"spate/internal/webui"
)

// herdEpochs is how much trace the in-process herd server ingests; the
// hot-window set is carved out of this span.
const herdEpochs = 8

// hotWindows is the number of distinct query windows the zipf fleet
// draws from.
const hotWindows = 8

// herd drives a concurrent zipf client fleet against a serving-tier
// fronted server — either one it booted in-process (where it can also
// read engine-side cache counters) or a live server named by Options.URL.
type herd struct {
	o       Options
	base    string
	windows []telco.TimeRange
	tenants []string // round-robin client → tenant assignment; empty = default tenant only
	shared  *serving.LRU
	engReg  *obs.Registry
	cleanup []func()
	// resetAdmission swaps in a fresh controller so benchmark iterations
	// all start from full buckets rather than inheriting a drained one.
	resetAdmission func()
}

// herdStats aggregates one volley's client-side outcomes plus the
// engine-side evaluation count when the server runs in-process.
type herdStats struct {
	requests    int
	ok          int
	rate        int // 429
	overload    int // 503
	other       int
	retryAfters map[string]int
	byTenant    map[string]*[2]int // tenant → [admitted, shed]
	elapsed     time.Duration
	evals       int64 // engine result-cache misses during the volley; -1 when unknown (URL mode)
}

func (s *herdStats) add(o herdStats) {
	s.requests += o.requests
	s.ok += o.ok
	s.rate += o.rate
	s.overload += o.overload
	s.other += o.other
	s.elapsed += o.elapsed
	if o.evals >= 0 {
		s.evals += o.evals
	}
	for ra, n := range o.retryAfters {
		if s.retryAfters == nil {
			s.retryAfters = map[string]int{}
		}
		s.retryAfters[ra] += n
	}
}

func (h *herd) Close() {
	for i := len(h.cleanup) - 1; i >= 0; i-- {
		h.cleanup[i]()
	}
}

// reset clears the shared result cache and refills the admission buckets
// so the next volley re-evaluates the hot set from a cold, fully budgeted
// start (benchmark iterations must not inherit warmth or drained buckets).
func (h *herd) reset() {
	if h.shared != nil {
		h.shared.Clear("engine")
	}
	if h.resetAdmission != nil {
		h.resetAdmission()
	}
}

// parseTenantMix expands "gold:2,bronze" into a client-assignment cycle:
// gold,gold,bronze. Weights are rounded down to at least one slot.
func parseTenantMix(spec string) []string {
	var out []string
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, weight := part, 1.0
		if i := strings.IndexByte(part, ':'); i >= 0 {
			name = strings.TrimSpace(part[:i])
			fmt.Sscanf(part[i+1:], "%f", &weight)
		}
		n := int(weight)
		if n < 1 {
			n = 1
		}
		for j := 0; j < n; j++ {
			out = append(out, name)
		}
	}
	return out
}

// newHerd boots the target. With Options.URL set it points at a live
// spate-server (assumed to serve the same demo trace, so the window math
// lines up) and engine-side counters are unavailable; otherwise it builds
// a small engine behind the full serving stack: shared LRU result cache,
// admission controller with the tenant mix, webui handler.
func newHerd(o Options) (*herd, error) {
	o = o.withDefaults()
	h := &herd{o: o, tenants: parseTenantMix(o.TenantMix)}

	cfg := o.genConfig()
	e0 := telco.EpochOf(cfg.Start)
	for i := 0; i < hotWindows; i++ {
		from := (e0 + telco.Epoch(i%herdEpochs)).Start()
		h.windows = append(h.windows, telco.NewTimeRange(from, from.Add(2*telco.EpochDuration)))
	}

	if o.URL != "" {
		h.base = strings.TrimRight(o.URL, "/")
		return h, nil
	}

	worldSeq++
	dir := filepath.Join(o.Dir, fmt.Sprintf("spate-serving-%d-%d", os.Getpid(), worldSeq))
	h.cleanup = append(h.cleanup, func() { os.RemoveAll(dir) })
	fs, err := dfs.NewCluster(dir, dfs.Config{BlockSize: 1 << 20, DataNodes: 2, Replication: 1})
	if err != nil {
		h.Close()
		return nil, err
	}
	g := gen.New(cfg)
	h.engReg = obs.NewRegistry()
	h.shared = serving.NewUnregisteredLRU(64 << 20)
	eng, err := core.Open(fs, g.CellTable(), core.Options{
		Obs:         h.engReg,
		ResultCache: serving.Namespace(h.shared, "engine"),
	})
	if err != nil {
		h.Close()
		return nil, err
	}
	for i := 0; i < herdEpochs; i++ {
		sn := snapshot.New(e0 + telco.Epoch(i))
		sn.Add(g.CDRTable(sn.Epoch))
		sn.Add(g.NMSTable(sn.Epoch))
		if _, err := eng.Ingest(sn); err != nil {
			h.Close()
			return nil, fmt.Errorf("bench: serving ingest: %w", err)
		}
	}
	eng.FinishIngest()

	// The default budget is sized so a synchronized fleet overruns it:
	// every client gets roughly one admitted request per second, and the
	// burst absorbs half the fleet's opening volley.
	limits := serving.Limits{
		RPS:           float64(o.Clients),
		Burst:         o.Clients / 2,
		MaxConcurrent: o.Clients,
	}
	tenants, err := serving.ParseTenants(o.TenantMix, limits)
	if err != nil {
		h.Close()
		return nil, err
	}
	ctlCfg := serving.Config{Default: limits, Tenants: tenants, Obs: obs.NewRegistry()}

	window := telco.NewTimeRange(e0.Start(), (e0 + telco.Epoch(herdEpochs)).Start())
	ui := webui.NewServer(eng, g.Cells(), window)
	ui.SetAdmission(serving.NewController(ctlCfg))
	h.resetAdmission = func() { ui.SetAdmission(serving.NewController(ctlCfg)) }
	// Serve through an indirection so resetAdmission's handler swap is
	// visible to the already running listener.
	srv := httptest.NewServer(http.HandlerFunc(func(wr http.ResponseWriter, r *http.Request) {
		ui.Handler().ServeHTTP(wr, r)
	}))
	h.cleanup = append(h.cleanup, srv.Close)
	h.base = srv.URL
	return h, nil
}

// run fires one volley: Clients goroutines, each issuing perClient
// explore requests over zipf-drawn hot windows, and returns the pooled
// outcome counts.
func (h *herd) run(perClient int) herdStats {
	st := herdStats{retryAfters: map[string]int{}, byTenant: map[string]*[2]int{}, evals: -1}
	var misses0 int64
	if h.engReg != nil {
		misses0 = h.engReg.Counter("spate_explore_cache_misses_total", "").Value()
	}

	var mu sync.Mutex
	var wg sync.WaitGroup
	client := &http.Client{Timeout: 30 * time.Second}
	start := time.Now()
	for c := 0; c < h.o.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(h.o.Seed*1009 + int64(c)))
			zipf := rand.NewZipf(rng, h.o.ZipfS, 1, uint64(len(h.windows)-1))
			tenant := ""
			if len(h.tenants) > 0 {
				tenant = h.tenants[c%len(h.tenants)]
			}
			for i := 0; i < perClient; i++ {
				w := h.windows[zipf.Uint64()]
				url := fmt.Sprintf("%s/api/explore?from=%s&to=%s",
					h.base, w.From.Format(telco.TimeLayout), w.To.Format(telco.TimeLayout))
				req, err := http.NewRequest("GET", url, nil)
				if err != nil {
					continue
				}
				if tenant != "" {
					req.Header.Set(serving.TenantHeader, tenant)
				}
				resp, err := client.Do(req)
				mu.Lock()
				st.requests++
				if err != nil {
					st.other++
					mu.Unlock()
					continue
				}
				key := tenant
				if key == "" {
					key = serving.DefaultTenant
				}
				tc := st.byTenant[key]
				if tc == nil {
					tc = new([2]int)
					st.byTenant[key] = tc
				}
				switch resp.StatusCode {
				case http.StatusOK:
					st.ok++
					tc[0]++
				case http.StatusTooManyRequests:
					st.rate++
					tc[1]++
					st.retryAfters[resp.Header.Get("Retry-After")]++
				case http.StatusServiceUnavailable:
					st.overload++
					tc[1]++
				default:
					st.other++
				}
				mu.Unlock()
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}(c)
	}
	wg.Wait()
	st.elapsed = time.Since(start)
	if h.engReg != nil {
		st.evals = h.engReg.Counter("spate_explore_cache_misses_total", "").Value() - misses0
	}
	return st
}

// ServingHerd reproduces the serving-tier acceptance scenario as a bench
// experiment: concurrent zipf clients against admission control plus the
// shared result cache, with per-tenant outcome and cache-collapse tables.
func ServingHerd(w io.Writer, o Options) error {
	o = o.withDefaults()
	h, err := newHerd(o)
	if err != nil {
		return err
	}
	defer h.Close()
	perClient := 8 * o.Iterations
	st := h.run(perClient)

	tab := &Table{
		Title:  fmt.Sprintf("Serving tier: zipf herd (clients=%d, s=%.2f, %d hot windows)", o.Clients, o.ZipfS, len(h.windows)),
		Header: []string{"outcome", "count", "fraction"},
	}
	frac := func(n int) string { return fmt.Sprintf("%.1f%%", 100*float64(n)/float64(max(1, st.requests))) }
	tab.AddRow("requests", fmt.Sprint(st.requests), "100.0%")
	tab.AddRow("admitted 200", fmt.Sprint(st.ok), frac(st.ok))
	tab.AddRow("shed 429 (rate)", fmt.Sprint(st.rate), frac(st.rate))
	tab.AddRow("shed 503 (overload)", fmt.Sprint(st.overload), frac(st.overload))
	if st.other > 0 {
		tab.AddRow("other/error", fmt.Sprint(st.other), frac(st.other))
	}
	tab.AddRow("throughput", fmt.Sprintf("%.0f req/s", float64(st.requests)/st.elapsed.Seconds()), "")
	tab.Fprint(w)

	if len(st.byTenant) > 1 {
		tt := &Table{Title: "Per-tenant outcomes", Header: []string{"tenant", "admitted", "shed"}}
		names := make([]string, 0, len(st.byTenant))
		for n := range st.byTenant {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			tc := st.byTenant[n]
			tt.AddRow(n, fmt.Sprint(tc[0]), fmt.Sprint(tc[1]))
		}
		tt.Fprint(w)
	}

	ct := &Table{Title: "Herd collapse", Header: []string{"metric", "value"}}
	if st.evals >= 0 {
		ct.AddRow("engine evaluations", fmt.Sprint(st.evals))
		ct.AddRow("evals/window", fmt.Sprintf("%.2f", float64(st.evals)/float64(len(h.windows))))
	} else {
		ct.AddRow("engine evaluations", "n/a (remote -url target)")
	}
	if h.shared != nil {
		cs := h.shared.Stats()
		ct.AddRow("shared-cache hits", fmt.Sprint(cs.Hits))
		ct.AddRow("shared-cache entries", fmt.Sprint(cs.Entries))
		ct.AddRow("shared-cache bytes", fmtMB(cs.Bytes))
	}
	ct.AddRow("distinct Retry-After", fmt.Sprint(len(st.retryAfters)))
	if len(st.retryAfters) > 0 {
		ras := make([]string, 0, len(st.retryAfters))
		for ra := range st.retryAfters {
			ras = append(ras, ra+"s")
		}
		sort.Strings(ras)
		ct.AddRow("Retry-After values", strings.Join(ras, " "))
	}
	ct.Fprint(w)
	return nil
}
