package bench

import (
	"bytes"
	"fmt"
	"io"
	"time"

	"spate/internal/compress"
	"spate/internal/entropy"
	"spate/internal/gen"
	"spate/internal/telco"
)

// Fig4Entropy reproduces Figure 4: the Shannon entropy of every attribute
// of the CDR, NMS and CELL sources. The paper's headline observation —
// most CDR attributes below 1 bit, several exactly 0 — is printed as a
// summary per panel, followed by the first attributes of each source.
func Fig4Entropy(w io.Writer, o Options) error {
	o = o.withDefaults()
	g := gen.New(o.genConfig())
	// Accumulate a sample of snapshots so per-attribute distributions are
	// representative (one morning, one evening, one night epoch per day).
	cdr := telco.NewTable(telco.CDRSchema)
	nms := telco.NewTable(telco.NMSSchema)
	e0 := telco.EpochOf(g.Config().Start)
	for d := 0; d < o.Days; d++ {
		for _, hh := range []int{9 * 2, 18 * 2, 2 * 2} { // 09:00, 18:00, 02:00
			e := e0 + telco.Epoch(d*telco.EpochsPerDay+hh)
			cdr.Rows = append(cdr.Rows, g.CDRTable(e).Rows...)
			nms.Rows = append(nms.Rows, g.NMSTable(e).Rows...)
		}
	}
	cell := g.CellTable()

	summary := &Table{
		Title:  "Figure 4 — Entropy of attributes (summary per panel)",
		Header: []string{"source", "attrs", "H=0", "H<1bit", "max H", "mean H"},
	}
	detail := &Table{
		Title:  "Figure 4 — per-attribute entropy (first attributes of each source)",
		Header: []string{"source", "attribute", "entropy (bits)"},
	}
	for _, panel := range []struct {
		name string
		t    *telco.Table
		show int
	}{{"CDR", cdr, 10}, {"NMS", nms, 8}, {"CELL", cell, 10}} {
		es := entropy.OfTable(panel.t)
		s := entropy.Summarize(es)
		summary.AddRow(panel.name,
			fmt.Sprint(s.Attrs), fmt.Sprint(s.Zero), fmt.Sprint(s.BelowOne),
			fmt.Sprintf("%.2f", s.Max), fmt.Sprintf("%.2f", s.Mean))
		for i, e := range es {
			if i >= panel.show {
				break
			}
			detail.AddRow(panel.name, e.Attr, fmt.Sprintf("%.3f", e.Bits))
		}
	}
	summary.Fprint(w)
	detail.Fprint(w)
	fmt.Fprintln(w, "\npaper shape: most CDR attributes < 1 bit with several exactly 0;")
	fmt.Fprintln(w, "NMS attributes substantially more entropic; CELL mixed low.")
	return nil
}

// Table1Compression reproduces Table I: compression ratio rc, compression
// time Tc1 and decompression time Tc2 per 30-minute snapshot, averaged
// over the trace, for each of the four codecs.
func Table1Compression(w io.Writer, o Options) error {
	o = o.withDefaults()
	g := gen.New(o.genConfig())
	// Render the snapshots once.
	var snaps [][]byte
	e0 := telco.EpochOf(g.Config().Start)
	n := o.Days * telco.EpochsPerDay
	if n > 24 {
		n = 24 // Table I averages per snapshot; two dozen suffice
	}
	for i := 0; i < n; i++ {
		e := e0 + telco.Epoch(i*2) // spread across the day
		var buf bytes.Buffer
		if err := g.CDRTable(e).WriteText(&buf); err != nil {
			return err
		}
		if err := g.NMSTable(e).WriteText(&buf); err != nil {
			return err
		}
		snaps = append(snaps, append([]byte(nil), buf.Bytes()...))
	}

	t := &Table{
		Title:  "Table I — Lossless compression libraries (average per 30-min snapshot)",
		Header: []string{"codec", "ratio rc", "Tc1 (compress)", "Tc2 (decompress)", "snapshot"},
	}
	paper := map[string]string{
		"gzip": "paper GZIP: 9.06", "sevenz": "paper 7z: 11.75",
		"snappy": "paper SNAPPY: 4.94", "zstd": "paper ZSTD: 9.72",
	}
	for _, name := range compress.Names() {
		c, err := compress.Lookup(name)
		if err != nil {
			return err
		}
		var raw, comp int64
		var tc1, tc2 time.Duration
		for _, s := range snaps {
			start := time.Now()
			cb := c.Compress(nil, s)
			tc1 += time.Since(start)
			start = time.Now()
			out, err := c.Decompress(nil, cb)
			tc2 += time.Since(start)
			if err != nil {
				return fmt.Errorf("bench: %s round trip: %w", name, err)
			}
			if !bytes.Equal(out, s) {
				return fmt.Errorf("bench: %s corrupted a snapshot", name)
			}
			raw += int64(len(s))
			comp += int64(len(cb))
		}
		k := time.Duration(len(snaps))
		t.AddRow(name,
			fmt.Sprintf("%.2f", compress.Ratio(int(raw), int(comp))),
			fmtDur(tc1/k), fmtDur(tc2/k), paper[name])
	}
	t.Fprint(w)
	fmt.Fprintln(w, "\npaper shape: 7z best ratio & slowest; SNAPPY ~half the ratio, no")
	fmt.Fprintln(w, "entropy stage; GZIP and ZSTD in between; Tc2 << Tc1 for all codecs.")
	return nil
}
