package bench

import (
	"fmt"
	"io"
	"time"

	"spate/internal/core"
	"spate/internal/tasks"
	"spate/internal/telco"
)

// measure runs fn Iterations times and returns the mean duration.
func measure(iters int, fn func() error) (time.Duration, error) {
	var total time.Duration
	for i := 0; i < iters; i++ {
		start := time.Now()
		if err := fn(); err != nil {
			return 0, err
		}
		total += time.Since(start)
	}
	return total / time.Duration(iters), nil
}

// Fig11ResponseTimes reproduces Figure 11: response times of the simpler
// tasks T1–T5 over the complete dataset for RAW, SHAHED and SPATE. Paper
// shape: SPATE slightly slower than SHAHED for T1–T3 and T5 (it pays
// decompression), but 4–5x faster for the self-join T4 (its input streams
// are smaller); RAW is slowest overall because it scans everything.
func Fig11ResponseTimes(w io.Writer, o Options) error {
	o = o.withDefaults()
	world, err := BuildWorld(o, TraceEpochs(o.genConfig(), o.Days), core.Options{})
	if err != nil {
		return err
	}
	defer world.Close()
	return fig11Over(w, o, world)
}

func fig11Over(w io.Writer, o Options, world *World) error {
	t := &Table{Title: "Figure 11 — Response time for simpler tasks T1–T5 (mean of iterations)",
		Header: []string{"task", "RAW", "SHAHED", "SPATE"}}

	e1 := telco.EpochOf(world.Cfg.Start) + telco.Epoch(9*2) // 09:00 snapshot
	wRange := telco.NewTimeRange(world.Cfg.Start, world.Cfg.Start.Add(time.Duration(o.Days)*24*time.Hour))
	// T4's nested loop is quadratic; bound its window to a morning so the
	// bench finishes (the paper bounds it by task definition, not window).
	wJoin := telco.NewTimeRange(world.Cfg.Start.Add(9*time.Hour), world.Cfg.Start.Add(11*time.Hour))

	type task struct {
		name string
		run  func(f tasks.Framework) error
	}
	list := []task{
		{"T1 equality", func(f tasks.Framework) error {
			_, err := tasks.T1Equality(f, e1)
			return err
		}},
		{"T2 range", func(f tasks.Framework) error {
			_, err := tasks.T2Range(f, wRange)
			return err
		}},
		{"T3 aggregate", func(f tasks.Framework) error {
			_, err := tasks.T3Aggregate(f, wRange)
			return err
		}},
		{"T4 join", func(f tasks.Framework) error {
			_, err := tasks.T4Join(f, wJoin)
			return err
		}},
		{"T5 privacy", func(f tasks.Framework) error {
			_, _, err := tasks.T5Privacy(f, wRange, 5)
			return err
		}},
	}
	for _, tk := range list {
		row := []string{tk.name}
		for _, f := range world.FWs {
			d, err := measure(o.Iterations, func() error { return tk.run(f) })
			if err != nil {
				return fmt.Errorf("bench: %s on %s: %w", tk.name, f.Name(), err)
			}
			row = append(row, fmtDur(d))
		}
		t.AddRow(row...)
	}
	t.Fprint(w)
	fmt.Fprintln(w, "\npaper shape: SPATE within a few seconds of SHAHED on T1-T3/T5")
	fmt.Fprintln(w, "(decompression overhead), 4-5x faster on the T4 join; RAW slowest.")
	return nil
}

// Fig12HeavyTasks reproduces Figure 12: response times of the heavier
// Spark-parallelized tasks T6–T8 (log scale in the paper). These are
// CPU-bound, so SPATE stays close to the uncompressed frameworks while
// still storing ~10x less.
func Fig12HeavyTasks(w io.Writer, o Options) error {
	o = o.withDefaults()
	world, err := BuildWorld(o, TraceEpochs(o.genConfig(), o.Days), core.Options{})
	if err != nil {
		return err
	}
	defer world.Close()
	return fig12Over(w, o, world)
}

func fig12Over(w io.Writer, o Options, world *World) error {
	t := &Table{Title: "Figure 12 — Response time for heavier tasks T6–T8 (parallelized)",
		Header: []string{"task", "RAW", "SHAHED", "SPATE"}}
	wRange := telco.NewTimeRange(world.Cfg.Start, world.Cfg.Start.Add(time.Duration(o.Days)*24*time.Hour))
	type task struct {
		name string
		run  func(f tasks.Framework) error
	}
	list := []task{
		{"T6 statistics", func(f tasks.Framework) error {
			_, err := tasks.T6Statistics(f, world.Pool, wRange)
			return err
		}},
		{"T7 clustering", func(f tasks.Framework) error {
			_, err := tasks.T7Clustering(f, world.Pool, wRange, 8)
			return err
		}},
		{"T8 regression", func(f tasks.Framework) error {
			_, err := tasks.T8Regression(f, world.Pool, wRange)
			return err
		}},
	}
	for _, tk := range list {
		row := []string{tk.name}
		for _, f := range world.FWs {
			d, err := measure(o.Iterations, func() error { return tk.run(f) })
			if err != nil {
				return fmt.Errorf("bench: %s on %s: %w", tk.name, f.Name(), err)
			}
			row = append(row, fmtDur(d))
		}
		t.AddRow(row...)
	}
	t.Fprint(w)
	fmt.Fprintln(w, "\npaper shape: T6-T8 are CPU-bound, so all frameworks land close;")
	fmt.Fprintln(w, "SPATE's benefit here is the ~10x storage reduction, not speed.")
	return nil
}
