package bench

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"spate/internal/compress"
	"spate/internal/core"
	"spate/internal/decay"
	"spate/internal/dfs"
	"spate/internal/gen"
	"spate/internal/geo"
	"spate/internal/highlights"
	"spate/internal/index"
	"spate/internal/snapshot"
	"spate/internal/tasks"
	"spate/internal/telco"
)

// buildSpate ingests the epochs into a standalone SPATE engine.
func buildSpate(o Options, epochs []telco.Epoch, opts core.Options) (*core.Engine, *gen.Generator, func(), time.Duration, error) {
	o = o.withDefaults()
	g := gen.New(o.genConfig())
	worldSeq++
	dir := filepath.Join(o.Dir, fmt.Sprintf("spate-bench-%d-%d", os.Getpid(), worldSeq))
	cleanup := func() { os.RemoveAll(dir) }
	fs, err := dfs.NewCluster(dir, benchClusterConfig())
	if err != nil {
		return nil, nil, cleanup, 0, err
	}
	eng, err := core.Open(fs, g.CellTable(), opts)
	if err != nil {
		return nil, nil, cleanup, 0, err
	}
	var total time.Duration
	for _, e := range epochs {
		sn := snapshot.New(e)
		sn.Add(g.CDRTable(e))
		sn.Add(g.NMSTable(e))
		rep, err := eng.Ingest(sn)
		if err != nil {
			return nil, nil, cleanup, 0, err
		}
		total += rep.Total
	}
	eng.FinishIngest()
	if len(epochs) > 0 {
		total /= time.Duration(len(epochs))
	}
	return eng, g, cleanup, total, nil
}

// AblateCodec measures the storage-layer codec choice (§IV-C): per codec,
// ingestion time, stored bytes and a range-query (T2-style) response time.
func AblateCodec(w io.Writer, o Options) error {
	o = o.withDefaults()
	epochs := TraceEpochs(o.genConfig(), 1)
	t := &Table{Title: "Ablation — storage codec (1 day of trace)",
		Header: []string{"codec", "avg ingest", "data", "T2 response"}}
	for _, name := range compress.Names() {
		c, err := compress.Lookup(name)
		if err != nil {
			return err
		}
		eng, _, cleanup, avg, err := buildSpate(o, epochs, core.Options{Codec: c})
		if err != nil {
			cleanup()
			return err
		}
		f := tasks.Spate{E: eng}
		wRange := telco.NewTimeRange(epochs[0].Start(), epochs[len(epochs)-1].End())
		d, err := measure(o.Iterations, func() error {
			_, err := tasks.T2Range(f, wRange)
			return err
		})
		if err != nil {
			cleanup()
			return err
		}
		data, _ := f.Space()
		t.AddRow(name, fmtDur(avg), fmtMB(data), fmtDur(d))
		cleanup()
	}
	t.Fprint(w)
	return nil
}

// AblateDecay compares no decay against the two fungi at a short horizon
// (§V-C): retained bytes, index nodes and whether aggregate exploration of
// the decayed window still answers.
func AblateDecay(w io.Writer, o Options) error {
	o = o.withDefaults()
	days := o.Days
	if days < 2 {
		days = 2
	}
	epochs := TraceEpochs(o.genConfig(), days)
	t := &Table{Title: "Ablation — decay policy (trace of " + fmt.Sprint(days) + " days, KeepRaw=12h)",
		Header: []string{"fungus", "data retained", "leaves", "decayed", "old-window rows"}}
	policies := []struct {
		name   string
		fungus decay.Fungus
		policy decay.Policy
	}{
		{"none (retain all)", decay.EvictOldestIndividuals{}, decay.Policy{}},
		{"evict-oldest-individuals", decay.EvictOldestIndividuals{}, decay.Policy{KeepRaw: 12 * time.Hour}},
		{"evict-grouped-individuals", decay.EvictGroupedIndividuals{}, decay.Policy{KeepRaw: 12 * time.Hour}},
		{"oldest + collapse epochs", decay.EvictOldestIndividuals{},
			decay.Policy{KeepRaw: 12 * time.Hour, KeepEpochNodes: 24 * time.Hour}},
	}
	for _, p := range policies {
		eng, _, cleanup, _, err := buildSpate(o, epochs, core.Options{Fungus: p.fungus, Policy: p.policy})
		if err != nil {
			cleanup()
			return err
		}
		st := eng.Tree().Stats()
		// Aggregates over the first (decayed) morning must still answer.
		oldW := telco.NewTimeRange(epochs[0].Start(), epochs[0].Start().Add(6*time.Hour))
		res, err := eng.Explore(core.Query{Window: oldW})
		if err != nil {
			cleanup()
			return err
		}
		t.AddRow(p.name, fmtMB(st.DataBytes), fmt.Sprint(st.Leaves),
			fmt.Sprint(st.DecayedLeaves), fmt.Sprint(res.Summary.Rows))
		cleanup()
	}
	t.Fprint(w)
	fmt.Fprintln(w, "\ndecay frees raw storage while day/month summaries keep answering")
	fmt.Fprintln(w, "aggregate exploration over the decayed window (progressive loss of detail).")
	return nil
}

// AblateLeafIndex measures the per-leaf spatial pruning discussed in §V-A:
// exact-row box queries with and without leaf summaries consulted.
func AblateLeafIndex(w io.Writer, o Options) error {
	o = o.withDefaults()
	epochs := TraceEpochs(o.genConfig(), 1)
	t := &Table{Title: "Ablation — per-leaf spatial pruning (§V-A), exact-row box query",
		Header: []string{"leaf pruning", "response", "scanned", "pruned"}}
	for _, prune := range []bool{false, true} {
		eng, g, cleanup, _, err := buildSpate(o, epochs, core.Options{LeafSpatialPrune: prune})
		if err != nil {
			cleanup()
			return err
		}
		// A small box around the first cell; the current (open) day keeps
		// leaf summaries, which is what the pruning consults.
		c0 := g.Cells()[0]
		box := geo.NewRect(c0.Pt.X-2, c0.Pt.Y-2, c0.Pt.X+2, c0.Pt.Y+2)
		wRange := telco.NewTimeRange(epochs[0].Start(), epochs[len(epochs)-1].End())
		var scanned, pruned int
		d, err := measure(o.Iterations, func() error {
			res, err := eng.Explore(core.Query{Window: wRange, Box: box, ExactRows: true, Tables: []string{"CDR"}})
			if err != nil {
				return err
			}
			scanned, pruned = res.ScannedLeaves, res.PrunedLeaves
			return nil
		})
		if err != nil {
			cleanup()
			return err
		}
		t.AddRow(fmt.Sprint(prune), fmtDur(d), fmt.Sprint(scanned), fmt.Sprint(pruned))
		cleanup()
	}
	t.Fprint(w)
	fmt.Fprintln(w, "\nthe paper argues the per-leaf spatial index yields only modest gains")
	fmt.Fprintln(w, "for 30-minute snapshots; pruning helps only sparse boxes.")
	return nil
}

// AblateTheta sweeps the highlight threshold θ (§V-B): volume of reported
// highlights per level.
func AblateTheta(w io.Writer, o Options) error {
	o = o.withDefaults()
	epochs := TraceEpochs(o.genConfig(), 1)
	t := &Table{Title: "Ablation — highlight threshold θ",
		Header: []string{"theta", "highlights (day window)", "categorical", "peaks"}}
	for _, theta := range []float64{0.001, 0.01, 0.05, 0.2} {
		eng, _, cleanup, _, err := buildSpate(o, epochs, core.Options{
			Theta: map[index.Level]float64{
				index.LevelEpoch: theta, index.LevelDay: theta,
				index.LevelMonth: theta, index.LevelYear: theta, index.LevelRoot: theta,
			},
		})
		if err != nil {
			cleanup()
			return err
		}
		wRange := telco.NewTimeRange(epochs[0].Start(), epochs[len(epochs)-1].End())
		res, err := eng.Explore(core.Query{Window: wRange})
		if err != nil {
			cleanup()
			return err
		}
		cat, peak := 0, 0
		for _, h := range res.Highlights {
			if h.Kind == highlights.Categorical {
				cat++
			} else {
				peak++
			}
		}
		t.AddRow(fmt.Sprintf("%.3f", theta), fmt.Sprint(len(res.Highlights)),
			fmt.Sprint(cat), fmt.Sprint(peak))
		cleanup()
	}
	t.Fprint(w)
	return nil
}

// AblateDictionary measures the zstd trained-dictionary direction (§IX-B
// differential compression): stored bytes with and without training.
func AblateDictionary(w io.Writer, o Options) error {
	o = o.withDefaults()
	epochs := TraceEpochs(o.genConfig(), 1)
	zc, err := compress.Lookup("zstd")
	if err != nil {
		return err
	}
	t := &Table{Title: "Ablation — zstd dictionary training (§IX-B direction)",
		Header: []string{"mode", "data", "avg ingest"}}
	for _, train := range []bool{false, true} {
		eng, _, cleanup, avg, err := buildSpate(o, epochs, core.Options{
			Codec: zc, TrainDictionary: train, TrainAfter: 4,
		})
		if err != nil {
			cleanup()
			return err
		}
		f := tasks.Spate{E: eng}
		data, _ := f.Space()
		mode := "zstd"
		if train {
			mode = "zstd + trained dictionary"
		}
		t.AddRow(mode, fmtMB(data), fmtDur(avg))
		cleanup()
	}
	t.Fprint(w)
	return nil
}
