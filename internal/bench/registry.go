package bench

import (
	"fmt"
	"io"
	"sort"
)

// Experiment is one runnable table/figure reproduction.
type Experiment struct {
	Name string
	Desc string
	Run  func(io.Writer, Options) error
}

// Experiments lists every experiment in presentation order.
func Experiments() []Experiment {
	return []Experiment{
		{"fig4", "Figure 4: per-attribute entropy of CDR/NMS/CELL", Fig4Entropy},
		{"table1", "Table I: compression ratio and (de)compression times", Table1Compression},
		{"fig7", "Figure 7: ingestion time per snapshot, by day period", Fig7IngestionByPeriod},
		{"fig8", "Figure 8: disk space, by day period", Fig8SpaceByPeriod},
		{"fig9", "Figure 9: ingestion time per snapshot, by weekday", Fig9IngestionByWeekday},
		{"fig10", "Figure 10: disk space, by weekday", Fig10SpaceByWeekday},
		{"fig11", "Figure 11: response time of tasks T1-T5", Fig11ResponseTimes},
		{"fig12", "Figure 12: response time of tasks T6-T8", Fig12HeavyTasks},
		{"space", "§VIII-C: storage totals across frameworks", SpaceTotals},
		{"window", "Window sweep: response time vs temporal window length", WindowSweep},
		{"ablate-codec", "Ablation: storage codec choice", AblateCodec},
		{"ablate-decay", "Ablation: decay fungi and horizons", AblateDecay},
		{"ablate-leafindex", "Ablation: per-leaf spatial pruning", AblateLeafIndex},
		{"ablate-theta", "Ablation: highlight threshold sweep", AblateTheta},
		{"ablate-dict", "Ablation: zstd dictionary training", AblateDictionary},
		{"serving", "Serving tier: zipf herd vs admission control + shared result cache", ServingHerd},
	}
}

// Lookup finds an experiment by name.
func Lookup(name string) (Experiment, error) {
	for _, e := range Experiments() {
		if e.Name == name {
			return e, nil
		}
	}
	names := make([]string, 0)
	for _, e := range Experiments() {
		names = append(names, e.Name)
	}
	sort.Strings(names)
	return Experiment{}, fmt.Errorf("bench: unknown experiment %q (have %v)", name, names)
}
