package bench

import (
	"context"
	"fmt"
	"io"
	"time"

	"spate/internal/core"
	"spate/internal/geo"
	"spate/internal/tasks"
	"spate/internal/telco"
)

// WindowSweep measures aggregate-query response time as the temporal
// window grows — the paper's headline claim that SPATE achieves "a data
// exploration response time that is independent of the queried temporal
// window". RAW scans every stored byte regardless of the window; SHAHED
// answers from its retained per-leaf summaries; SPATE answers from
// day/month/year summaries on the exact path and from the single covering
// node on the fast path (§VI-A).
func WindowSweep(w io.Writer, o Options) error {
	o = o.withDefaults()
	days := o.Days
	if days < 2 {
		days = 2
	}
	world, err := BuildWorld(o, TraceEpochs(o.genConfig(), days), core.Options{})
	if err != nil {
		return err
	}
	defer world.Close()

	rawFw := world.Framework("RAW")
	shahed := world.Framework("SHAHED").(tasks.Shahed).S
	spate := world.Framework("SPATE").(tasks.Spate).E

	t := &Table{
		Title: "Window sweep — aggregate response time vs window length",
		Header: []string{"window", "RAW scan", "SHAHED index", "SPATE exact", "SPATE fast (§VI-A)",
			"SPATE rows"},
	}
	windows := []time.Duration{
		3 * time.Hour, 6 * time.Hour, 12 * time.Hour,
		24 * time.Hour, time.Duration(days) * 24 * time.Hour,
	}
	for _, span := range windows {
		win := telco.NewTimeRange(world.Cfg.Start, world.Cfg.Start.Add(span))

		dRaw, err := measure(o.Iterations, func() error {
			rows := 0
			return countScan(rawFw, win, &rows)
		})
		if err != nil {
			return err
		}
		dShahed, err := measure(o.Iterations, func() error {
			_, err := shahed.Aggregate(win, geo.Rect{})
			return err
		})
		if err != nil {
			return err
		}
		var spateRows int64
		dExact, err := measure(o.Iterations, func() error {
			spate.ClearCache() // measure real work, not the result cache
			res, err := spate.Explore(core.Query{Window: win})
			if err == nil {
				spateRows = res.Summary.Rows
			}
			return err
		})
		if err != nil {
			return err
		}
		dFast, err := measure(o.Iterations, func() error {
			spate.ClearCache()
			_, err := spate.Explore(core.Query{Window: win, Fast: true})
			return err
		})
		if err != nil {
			return err
		}
		t.AddRow(span.String(), fmtDur(dRaw), fmtDur(dShahed),
			fmtDur(dExact), fmtDur(dFast), fmt.Sprint(spateRows))
	}
	t.Fprint(w)
	fmt.Fprintln(w, "\npaper shape: RAW grows with the window (full scans); SPATE's exact")
	fmt.Fprintln(w, "path flattens once windows swallow sealed days, and the fast path is")
	fmt.Fprintln(w, "constant-time at any window length (the result cache is cleared")
	fmt.Fprintln(w, "between iterations so timings reflect real work).")
	return nil
}

// countScan counts rows through a framework scan (the RAW query model).
func countScan(f tasks.Framework, w telco.TimeRange, rows *int) error {
	return f.Scan(context.Background(), w, []string{"CDR", "NMS"}, func(_ string, tab *telco.Table) error {
		*rows += tab.Len()
		return nil
	})
}
