package bench

import (
	"testing"
)

// BenchmarkServing measures one zipf herd volley against the full serving
// stack (admission controller + shared result cache + engine). The shared
// cache is cleared between iterations so each volley re-evaluates the hot
// set; evals/window is the herd-collapse gate — shared cache plus
// singleflight should keep it near one evaluation per touched window no
// matter how many clients pile on.
func BenchmarkServing(b *testing.B) {
	o := Options{
		Scale: 0.002, Days: 1, Iterations: 1, Workers: 1,
		Dir: b.TempDir(), Seed: 1, Clients: 8, ZipfS: 1.3,
	}
	h, err := newHerd(o)
	if err != nil {
		b.Fatal(err)
	}
	defer h.Close()

	var agg herdStats
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		h.reset()
		b.StartTimer()
		st := h.run(8)
		agg.add(st)
	}
	b.StopTimer()
	if agg.ok == 0 {
		b.Fatal("no request was admitted")
	}
	total := float64(agg.requests)
	b.ReportMetric(float64(agg.evals)/float64(len(h.windows)*b.N), "evals/window")
	b.ReportMetric(float64(agg.rate+agg.overload)/total, "shed/op")
	b.ReportMetric(total/agg.elapsed.Seconds(), "req/s")
}
