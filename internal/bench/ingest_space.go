package bench

import (
	"fmt"
	"io"
	"time"

	"spate/internal/core"
	"spate/internal/telco"
)

// Fig7IngestionByPeriod reproduces Figure 7: ingestion time per snapshot
// for RAW, SHAHED and SPATE over the Morning/Afternoon/Evening/Night
// datasets. The paper's shape: SPATE is the slowest but within ~1.25x,
// and load variation across periods barely moves ingestion time.
func Fig7IngestionByPeriod(w io.Writer, o Options) error {
	return ingestSeries(w, o,
		"Figure 7 — Ingestion time per snapshot, by day period",
		"Figure 8 — Disk space for the dataset, by day period",
		periodPartitions(o), false)
}

// Fig8SpaceByPeriod reproduces Figure 8: total disk space per framework
// over the day-period datasets; SPATE is ~an order of magnitude smaller.
func Fig8SpaceByPeriod(w io.Writer, o Options) error {
	return ingestSeries(w, o,
		"Figure 7 — Ingestion time per snapshot, by day period",
		"Figure 8 — Disk space for the dataset, by day period",
		periodPartitions(o), true)
}

// Fig9IngestionByWeekday reproduces Figure 9 (ingestion time by weekday).
func Fig9IngestionByWeekday(w io.Writer, o Options) error {
	return ingestSeries(w, o,
		"Figure 9 — Ingestion time per snapshot, by day of week",
		"Figure 10 — Disk space for the dataset, by day of week",
		weekdayPartitions(o), false)
}

// Fig10SpaceByWeekday reproduces Figure 10 (disk space by weekday).
func Fig10SpaceByWeekday(w io.Writer, o Options) error {
	return ingestSeries(w, o,
		"Figure 9 — Ingestion time per snapshot, by day of week",
		"Figure 10 — Disk space for the dataset, by day of week",
		weekdayPartitions(o), true)
}

type partition struct {
	name   string
	epochs []telco.Epoch
}

func periodPartitions(o Options) []partition {
	o = o.withDefaults()
	cfg := o.genConfig()
	all := TraceEpochs(cfg, o.Days)
	var out []partition
	for _, p := range DayPeriods {
		out = append(out, partition{p.Name, FilterByPeriod(all, p)})
	}
	return out
}

func weekdayPartitions(o Options) []partition {
	o = o.withDefaults()
	cfg := o.genConfig()
	days := o.Days
	if days < 7 {
		days = 7 // weekday figures need the full week
	}
	all := TraceEpochs(cfg, days)
	var out []partition
	for _, wd := range []time.Weekday{
		time.Monday, time.Tuesday, time.Wednesday, time.Thursday,
		time.Friday, time.Saturday, time.Sunday,
	} {
		out = append(out, partition{wd.String()[:3], FilterByWeekday(all, wd)})
	}
	return out
}

// ingestSeries ingests each partition into fresh frameworks and prints
// either the ingestion-time series (Fig. 7/9) or the space series
// (Fig. 8/10); both tables are always computed so a single run regenerates
// the paired figures.
func ingestSeries(w io.Writer, o Options, timeTitle, spaceTitle string, parts []partition, spaceOnly bool) error {
	o = o.withDefaults()
	tTime := &Table{Title: timeTitle,
		Header: []string{"dataset", "snapshots", "RAW", "SHAHED", "SPATE", "SPATE/RAW"}}
	tSpace := &Table{Title: spaceTitle,
		Header: []string{"dataset", "RAW", "SHAHED", "SPATE data", "SPATE total", "RAW/SPATEdata"}}
	for _, p := range parts {
		world, err := BuildWorld(o, p.epochs, core.Options{})
		if err != nil {
			return err
		}
		rawT := world.AvgIngest["RAW"]
		shT := world.AvgIngest["SHAHED"]
		spT := world.AvgIngest["SPATE"]
		ratio := 0.0
		if rawT > 0 {
			ratio = float64(spT) / float64(rawT)
		}
		tTime.AddRow(p.name, fmt.Sprint(len(p.epochs)),
			fmtDur(rawT), fmtDur(shT), fmtDur(spT), fmt.Sprintf("%.2fx", ratio))

		var totals [3]int64
		var spateData int64
		for i, f := range world.FWs {
			d, idx := f.Space()
			totals[i] = d + idx
			if f.Name() == "SPATE" {
				spateData = d
			}
		}
		gap := 0.0
		if spateData > 0 {
			gap = float64(totals[0]) / float64(spateData)
		}
		tSpace.AddRow(p.name, fmtMB(totals[0]), fmtMB(totals[1]),
			fmtMB(spateData), fmtMB(totals[2]), fmt.Sprintf("%.1fx", gap))
		world.Close()
	}
	if spaceOnly {
		tSpace.Fprint(w)
		fmt.Fprintln(w, "\npaper shape: SPATE needs ~an order of magnitude less disk space,")
		fmt.Fprintln(w, "steady across load variation.")
	} else {
		tTime.Fprint(w)
		fmt.Fprintln(w, "\npaper shape: SPATE has the slowest ingestion but stays within")
		fmt.Fprintln(w, "~1.25x of RAW, and load variation barely moves per-snapshot time.")
	}
	return nil
}

// SpaceTotals reproduces the §VIII-C storage totals across all eight
// tasks: "SPATE requires the least storage space, i.e., 0.49GB vs. 5.37GB
// and 5.32GB required by SHAHED and RAW".
func SpaceTotals(w io.Writer, o Options) error {
	o = o.withDefaults()
	world, err := BuildWorld(o, TraceEpochs(o.genConfig(), o.Days), core.Options{})
	if err != nil {
		return err
	}
	defer world.Close()
	t := &Table{Title: "§VIII-C — Storage totals for the whole trace",
		Header: []string{"framework", "data", "index", "total", "paper"}}
	paper := map[string]string{"RAW": "5.32GB", "SHAHED": "5.37GB", "SPATE": "0.49GB"}
	for _, f := range world.FWs {
		d, idx := f.Space()
		t.AddRow(f.Name(), fmtMB(d), fmtMB(idx), fmtMB(d+idx), paper[f.Name()])
	}
	t.Fprint(w)
	return nil
}
