package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"spate/internal/telco"
)

// tinyOptions keeps experiment tests fast: a sliver of the trace.
func tinyOptions(t *testing.T) Options {
	t.Helper()
	return Options{Scale: 0.001, Days: 1, Iterations: 1, Workers: 1, Dir: t.TempDir(), Seed: 1}
}

func TestEveryExperimentRuns(t *testing.T) {
	for _, e := range Experiments() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			if testing.Short() && (e.Name == "fig9" || e.Name == "fig10") {
				t.Skip("7-day experiments skipped in -short")
			}
			var buf bytes.Buffer
			if err := e.Run(&buf, tinyOptions(t)); err != nil {
				t.Fatalf("%s: %v", e.Name, err)
			}
			out := buf.String()
			if !strings.Contains(out, "==") {
				t.Errorf("%s produced no table:\n%s", e.Name, out)
			}
		})
	}
}

func TestLookup(t *testing.T) {
	if _, err := Lookup("fig11"); err != nil {
		t.Error(err)
	}
	if _, err := Lookup("nope"); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestPeriodPartitionsCoverDay(t *testing.T) {
	o := tinyOptions(t)
	parts := periodPartitions(o)
	if len(parts) != 4 {
		t.Fatalf("parts = %d", len(parts))
	}
	total := 0
	for _, p := range parts {
		total += len(p.epochs)
	}
	if total != telco.EpochsPerDay*o.Days {
		t.Errorf("period partitions cover %d epochs, want %d", total, telco.EpochsPerDay*o.Days)
	}
	// Night wraps midnight: must include hour 23 and hour 2 epochs.
	night := parts[3]
	sawLate, sawEarly := false, false
	for _, e := range night.epochs {
		switch e.Start().Hour() {
		case 23:
			sawLate = true
		case 2:
			sawEarly = true
		}
	}
	if !sawLate || !sawEarly {
		t.Error("night period does not wrap midnight")
	}
}

func TestWeekdayPartitionsCoverWeek(t *testing.T) {
	o := tinyOptions(t)
	parts := weekdayPartitions(o)
	if len(parts) != 7 {
		t.Fatalf("parts = %d", len(parts))
	}
	for _, p := range parts {
		if len(p.epochs) != telco.EpochsPerDay {
			t.Errorf("%s has %d epochs, want %d", p.name, len(p.epochs), telco.EpochsPerDay)
		}
	}
}

func TestTablePrinting(t *testing.T) {
	tab := &Table{Title: "X", Header: []string{"a", "bb"}}
	tab.AddRow("1", "2")
	var buf bytes.Buffer
	tab.Fprint(&buf)
	out := buf.String()
	if !strings.Contains(out, "== X ==") || !strings.Contains(out, "bb") {
		t.Errorf("output: %s", out)
	}
}

func TestMeasureAverages(t *testing.T) {
	n := 0
	d, err := measure(5, func() error { n++; time.Sleep(time.Millisecond); return nil })
	if err != nil || n != 5 {
		t.Fatalf("measure: %v n=%d", err, n)
	}
	if d < time.Millisecond/2 {
		t.Errorf("mean %v too small", d)
	}
}
