// Package privacy implements k-anonymity (Sweeney 2002) for telco data
// sharing — the substrate behind the paper's task T5, which "generates a
// k-anonymized dataset by generalizing, substituting, inserting, and
// removing information as appropriate in order to make the
// quasi-identifiers indistinguishable among k rows" (the role the ARX Java
// library plays in the paper's testbed).
//
// The anonymizer uses Mondrian-style multidimensional partitioning:
// records are recursively split on the quasi-identifier with the widest
// normalized range, at the median, as long as both halves keep at least k
// records; each final partition is released with its quasi-identifiers
// generalized (numeric values to ranges, strings to common prefixes).
// Partitions that cannot reach size k are suppressed.
package privacy

import (
	"fmt"
	"sort"
	"strings"

	"spate/internal/telco"
)

// Options configures anonymization.
type Options struct {
	// K is the anonymity parameter: every released combination of
	// quasi-identifier values appears at least K times.
	K int
	// QuasiIdentifiers are the column names to generalize.
	QuasiIdentifiers []string
	// Suppress replaces quasi-identifiers of unprotectable residual rows
	// with "*" instead of dropping the rows (default: drop).
	Suppress bool
}

// Report summarizes an anonymization run.
type Report struct {
	InputRows      int
	ReleasedRows   int
	SuppressedRows int
	Partitions     int
	// GeneralizationLoss is the fraction of quasi-identifier cells whose
	// value was generalized away from the original (0 = lossless).
	GeneralizationLoss float64
}

// Anonymize releases a k-anonymized copy of the table. Quasi-identifier
// columns become strings (ranges like "[10-20]", prefixes like "3570012*",
// or "*"); other columns pass through unchanged.
func Anonymize(t *telco.Table, opts Options) (*telco.Table, Report, error) {
	rep := Report{InputRows: t.Len()}
	if opts.K < 1 {
		return nil, rep, fmt.Errorf("privacy: k = %d", opts.K)
	}
	if len(opts.QuasiIdentifiers) == 0 {
		return nil, rep, fmt.Errorf("privacy: no quasi-identifiers")
	}
	qidIdx := make([]int, len(opts.QuasiIdentifiers))
	for i, name := range opts.QuasiIdentifiers {
		idx := t.Schema.FieldIndex(name)
		if idx < 0 {
			return nil, rep, fmt.Errorf("privacy: unknown quasi-identifier %q", name)
		}
		qidIdx[i] = idx
	}

	// Output schema: quasi-identifier columns become strings.
	outFields := make([]telco.Field, len(t.Schema.Fields))
	copy(outFields, t.Schema.Fields)
	for _, idx := range qidIdx {
		outFields[idx] = telco.Field{Name: outFields[idx].Name, Kind: telco.KindString}
	}
	outSchema, err := telco.NewSchema(t.Schema.Name+"_anon", outFields)
	if err != nil {
		return nil, rep, err
	}
	out := telco.NewTable(outSchema)

	rows := make([]telco.Record, len(t.Rows))
	copy(rows, t.Rows)

	var release func(part []telco.Record)
	var genCells, totalCells int64
	release = func(part []telco.Record) {
		if len(part) < opts.K {
			if opts.Suppress {
				for _, r := range part {
					nr := r.Clone()
					for _, idx := range qidIdx {
						nr[idx] = telco.String("*")
						genCells++
						totalCells++
					}
					out.Append(nr)
					rep.ReleasedRows++
				}
				rep.Partitions++
			} else {
				rep.SuppressedRows += len(part)
			}
			return
		}
		// Try to split on the widest normalized dimension.
		if dim := chooseSplit(part, qidIdx, opts.K); dim >= 0 {
			lo, hi := splitAtMedian(part, qidIdx[dim], opts.K)
			if lo != nil {
				release(lo)
				release(hi)
				return
			}
		}
		// Release this partition with generalized quasi-identifiers.
		rep.Partitions++
		gen := make([]telco.Value, len(qidIdx))
		for i, idx := range qidIdx {
			g, lossy := generalize(part, idx)
			gen[i] = g
			if lossy {
				genCells += int64(len(part))
			}
			totalCells += int64(len(part))
		}
		for _, r := range part {
			nr := r.Clone()
			for i, idx := range qidIdx {
				nr[idx] = gen[i]
			}
			out.Append(nr)
			rep.ReleasedRows++
		}
	}
	release(rows)
	if totalCells > 0 {
		rep.GeneralizationLoss = float64(genCells) / float64(totalCells)
	}
	return out, rep, nil
}

// chooseSplit picks the quasi-identifier with the most distinct values
// that still admits a median split into halves of >= k; -1 when none.
func chooseSplit(part []telco.Record, qidIdx []int, k int) int {
	if len(part) < 2*k {
		return -1
	}
	best, bestDistinct := -1, 1
	for dim, idx := range qidIdx {
		seen := map[string]bool{}
		for _, r := range part {
			seen[r[idx].Format()] = true
			if len(seen) > bestDistinct {
				break
			}
		}
		if len(seen) > bestDistinct {
			bestDistinct = len(seen)
			best = dim
		}
	}
	return best
}

// splitAtMedian orders the partition by column idx and cuts at the median
// value boundary so identical values stay together. Returns nils when no
// boundary leaves both sides >= k.
func splitAtMedian(part []telco.Record, idx, k int) (lo, hi []telco.Record) {
	sorted := make([]telco.Record, len(part))
	copy(sorted, part)
	sort.SliceStable(sorted, func(i, j int) bool {
		return sorted[i][idx].Compare(sorted[j][idx]) < 0
	})
	mid := len(sorted) / 2
	// Move the cut forward to the next value boundary.
	cut := mid
	for cut < len(sorted) && sorted[cut][idx].Compare(sorted[mid-1][idx]) == 0 {
		if cut > 0 && sorted[cut][idx].Compare(sorted[cut-1][idx]) != 0 {
			break
		}
		cut++
	}
	if cut < k || len(sorted)-cut < k {
		// Try the boundary before the median instead.
		cut = mid
		for cut > 0 && sorted[cut][idx].Compare(sorted[cut-1][idx]) == 0 {
			cut--
		}
		if cut < k || len(sorted)-cut < k {
			return nil, nil
		}
	}
	return sorted[:cut], sorted[cut:]
}

// generalize produces one released value covering a partition's column:
// numeric columns become "[min-max]" ranges, strings become common
// prefixes with a "*" suffix. The bool reports whether information was
// lost (more than one distinct source value).
func generalize(part []telco.Record, idx int) (telco.Value, bool) {
	distinct := map[string]bool{}
	for _, r := range part {
		distinct[r[idx].Format()] = true
	}
	if len(distinct) == 1 {
		for v := range distinct {
			return telco.String(v), false
		}
	}
	// Numeric range?
	numeric := true
	for _, r := range part {
		switch r[idx].Kind() {
		case telco.KindInt, telco.KindFloat:
		default:
			numeric = false
		}
		if !numeric {
			break
		}
	}
	if numeric {
		min, max := part[0][idx].Float64(), part[0][idx].Float64()
		for _, r := range part[1:] {
			v := r[idx].Float64()
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
		return telco.String(fmt.Sprintf("[%g-%g]", min, max)), true
	}
	// Common string prefix.
	var values []string
	for v := range distinct {
		values = append(values, v)
	}
	sort.Strings(values)
	prefix := values[0]
	for _, v := range values[1:] {
		prefix = commonPrefix(prefix, v)
	}
	return telco.String(prefix + "*"), true
}

func commonPrefix(a, b string) string {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	i := 0
	for i < n && a[i] == b[i] {
		i++
	}
	return a[:i]
}

// VerifyK checks the k-anonymity property of a released table: every
// combination of quasi-identifier values occurs at least k times. It
// returns the smallest equivalence-class size (0 for an empty table).
func VerifyK(t *telco.Table, quasi []string) (int, error) {
	idxs := make([]int, len(quasi))
	for i, name := range quasi {
		idx := t.Schema.FieldIndex(name)
		if idx < 0 {
			return 0, fmt.Errorf("privacy: unknown column %q", name)
		}
		idxs[i] = idx
	}
	classes := map[string]int{}
	for _, r := range t.Rows {
		var b strings.Builder
		for _, idx := range idxs {
			b.WriteString(r[idx].Format())
			b.WriteByte('\x00')
		}
		classes[b.String()]++
	}
	min := 0
	first := true
	for _, n := range classes {
		if first || n < min {
			min = n
			first = false
		}
	}
	return min, nil
}
