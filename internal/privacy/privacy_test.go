package privacy

import (
	"math/rand"
	"strings"
	"testing"

	"spate/internal/telco"
)

var schema = telco.MustSchema("CDR", []telco.Field{
	{Name: "caller", Kind: telco.KindString},
	{Name: "cell_id", Kind: telco.KindInt},
	{Name: "duration", Kind: telco.KindInt},
	{Name: "call_type", Kind: telco.KindString},
})

func randomTable(n int, seed int64) *telco.Table {
	rng := rand.New(rand.NewSource(seed))
	t := telco.NewTable(schema)
	for i := 0; i < n; i++ {
		t.Append(telco.Record{
			telco.String(telcoNumber(rng.Intn(200))),
			telco.Int(int64(rng.Intn(50) + 1)),
			telco.Int(int64(rng.Intn(600))),
			telco.String([]string{"VOICE", "SMS", "DATA"}[rng.Intn(3)]),
		})
	}
	return t
}

func telcoNumber(u int) string {
	return "357" + strings.Repeat("0", 5) + string(rune('0'+u/100%10)) + string(rune('0'+u/10%10)) + string(rune('0'+u%10))
}

var quasi = []string{"caller", "cell_id", "duration"}

func TestKAnonymityPropertyHolds(t *testing.T) {
	for _, k := range []int{2, 5, 10, 25} {
		tab := randomTable(500, int64(k))
		anon, rep, err := Anonymize(tab, Options{K: k, QuasiIdentifiers: quasi})
		if err != nil {
			t.Fatal(err)
		}
		min, err := VerifyK(anon, quasi)
		if err != nil {
			t.Fatal(err)
		}
		if anon.Len() > 0 && min < k {
			t.Errorf("k=%d: smallest class = %d", k, min)
		}
		if rep.ReleasedRows+rep.SuppressedRows != rep.InputRows {
			t.Errorf("k=%d: rows unaccounted: %+v", k, rep)
		}
		if rep.ReleasedRows == 0 {
			t.Errorf("k=%d: everything suppressed", k)
		}
	}
}

func TestSuppressKeepsRowCount(t *testing.T) {
	tab := randomTable(101, 3) // odd count forces a residue
	anon, rep, err := Anonymize(tab, Options{K: 7, QuasiIdentifiers: quasi, Suppress: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.SuppressedRows != 0 || anon.Len() != tab.Len() {
		t.Errorf("suppress mode dropped rows: %+v", rep)
	}
	// Suppressed rows carry "*" and the k-property still holds for the
	// non-star classes... the star class itself may be small; the overall
	// guarantee is that "*" reveals nothing.
	min, err := VerifyK(anon, quasi)
	if err != nil {
		t.Fatal(err)
	}
	if min == 0 {
		t.Error("empty class")
	}
}

func TestNonQuasiColumnsPassThrough(t *testing.T) {
	tab := randomTable(100, 4)
	anon, _, err := Anonymize(tab, Options{K: 5, QuasiIdentifiers: quasi})
	if err != nil {
		t.Fatal(err)
	}
	typeIdx := anon.Schema.FieldIndex("call_type")
	types := map[string]bool{}
	for _, r := range anon.Rows {
		types[r[typeIdx].Str()] = true
	}
	for v := range types {
		switch v {
		case "VOICE", "SMS", "DATA":
		default:
			t.Errorf("non-quasi column modified: %q", v)
		}
	}
}

func TestGeneralizationShapes(t *testing.T) {
	tab := telco.NewTable(schema)
	for i := 0; i < 4; i++ {
		tab.Append(telco.Record{
			telco.String("35700001" + string(rune('0'+i))),
			telco.Int(int64(10 + i)),
			telco.Int(60),
			telco.String("VOICE"),
		})
	}
	anon, _, err := Anonymize(tab, Options{K: 4, QuasiIdentifiers: quasi})
	if err != nil {
		t.Fatal(err)
	}
	if anon.Len() != 4 {
		t.Fatalf("rows = %d", anon.Len())
	}
	r := anon.Rows[0]
	if got := r.Get(anon.Schema, "caller").Str(); got != "35700001*" {
		t.Errorf("caller generalization = %q", got)
	}
	if got := r.Get(anon.Schema, "cell_id").Str(); got != "[10-13]" {
		t.Errorf("cell generalization = %q", got)
	}
	// duration was constant: released unchanged.
	if got := r.Get(anon.Schema, "duration").Str(); got != "60" {
		t.Errorf("constant column generalized: %q", got)
	}
}

func TestSmallInputSuppressedEntirely(t *testing.T) {
	tab := randomTable(3, 5)
	anon, rep, err := Anonymize(tab, Options{K: 10, QuasiIdentifiers: quasi})
	if err != nil {
		t.Fatal(err)
	}
	if anon.Len() != 0 || rep.SuppressedRows != 3 {
		t.Errorf("small input: %+v", rep)
	}
}

func TestOptionValidation(t *testing.T) {
	tab := randomTable(10, 6)
	if _, _, err := Anonymize(tab, Options{K: 0, QuasiIdentifiers: quasi}); err == nil {
		t.Error("k=0 accepted")
	}
	if _, _, err := Anonymize(tab, Options{K: 2}); err == nil {
		t.Error("no quasi-identifiers accepted")
	}
	if _, _, err := Anonymize(tab, Options{K: 2, QuasiIdentifiers: []string{"nope"}}); err == nil {
		t.Error("unknown quasi-identifier accepted")
	}
	if _, err := VerifyK(tab, []string{"nope"}); err == nil {
		t.Error("VerifyK with unknown column accepted")
	}
}

func TestLargerKLosesMoreInformation(t *testing.T) {
	tab := randomTable(400, 7)
	_, repLow, err := Anonymize(tab, Options{K: 2, QuasiIdentifiers: quasi})
	if err != nil {
		t.Fatal(err)
	}
	_, repHigh, err := Anonymize(tab, Options{K: 50, QuasiIdentifiers: quasi})
	if err != nil {
		t.Fatal(err)
	}
	if repHigh.GeneralizationLoss < repLow.GeneralizationLoss {
		t.Errorf("loss(k=50)=%.3f < loss(k=2)=%.3f", repHigh.GeneralizationLoss, repLow.GeneralizationLoss)
	}
	if repHigh.Partitions > repLow.Partitions {
		t.Errorf("partitions(k=50)=%d > partitions(k=2)=%d", repHigh.Partitions, repLow.Partitions)
	}
}
