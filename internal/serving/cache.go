package serving

import (
	"container/list"
	"sync"
	"sync/atomic"

	"spate/internal/core"
	"spate/internal/obs"
	"spate/internal/telco"
)

// Cache is the serving tier's shared result store. It is namespaced: one
// instance serves every engine in the process (all shard replicas of a
// local cluster) under one byte budget, with per-engine namespaces
// keeping keys and invalidation scopes apart. The interface is shaped so
// an external tier (a remote cache process) can slot in later: values
// cross it as whole *core.Result objects and every mutation is keyed by
// (namespace, key) or namespace alone.
//
// The cache inherits the engine's decay/epoch invalidation contract:
// Invalidate must drop every entry whose ServedPeriod overlaps any given
// range (half-open, like telco.TimeRange), and Clear must drop the whole
// namespace — the engine calls them on decay and ingest respectively.
// Singleflight deduplication of identical misses stays engine-side (the
// result flight of PR 8), so a shared tier needs no lease protocol.
type Cache interface {
	Get(ns, key string) (*core.Result, bool)
	Put(ns, key string, r *core.Result)
	Invalidate(ns string, ranges []telco.TimeRange)
	Clear(ns string)
	Stats() CacheStats
}

// CacheStats is a point-in-time view of a cache tier.
type CacheStats struct {
	Entries       int
	Bytes         int64
	Hits          int64
	Misses        int64
	Evictions     int64
	Invalidations int64
}

// lruEntry is one cached result with its accounting.
type lruEntry struct {
	ns   string
	key  string // full key: ns + "\x00" + user key
	res  *core.Result
	size int64
}

// LRU is the in-process tier: a bytes-bounded least-recently-used map.
// All methods are safe for concurrent use.
type LRU struct {
	mu    sync.Mutex
	max   int64
	bytes int64
	ll    *list.List // front = most recent
	items map[string]*list.Element

	hits, misses, evictions, invalidations atomic.Int64

	// onEvict/onInvalidate mirror the atomics into registry counters;
	// nil on an unregistered LRU (tests).
	onEvict      func()
	onInvalidate func()
}

// NewLRU builds a bytes-bounded LRU tier and registers its gauges and
// counters (tier="shared") on reg; nil reg selects obs.Default. Results
// are budgeted by Result.SizeBytes.
func NewLRU(maxBytes int64, reg *obs.Registry) *LRU {
	if reg == nil {
		reg = obs.Default
	}
	c := &LRU{max: maxBytes, ll: list.New(), items: make(map[string]*list.Element)}
	reg.GaugeFunc("spate_result_cache_entries",
		"Cached exploration results.", func() float64 {
			c.mu.Lock()
			defer c.mu.Unlock()
			return float64(len(c.items))
		}, "tier", "shared")
	reg.GaugeFunc("spate_result_cache_bytes",
		"Estimated bytes held by cached exploration results.", func() float64 {
			c.mu.Lock()
			defer c.mu.Unlock()
			return float64(c.bytes)
		}, "tier", "shared")
	evict := reg.Counter("spate_result_cache_evictions_total",
		"Cached results evicted to stay within bounds.", "tier", "shared")
	inval := reg.Counter("spate_result_cache_invalidations_total",
		"Cached results dropped by decay/ingest invalidation.", "tier", "shared")
	c.onEvict, c.onInvalidate = evict.Inc, inval.Inc
	return c
}

// NewUnregisteredLRU builds a bytes-bounded LRU without touching any
// metrics registry (tests and embedded uses).
func NewUnregisteredLRU(maxBytes int64) *LRU {
	return &LRU{max: maxBytes, ll: list.New(), items: make(map[string]*list.Element)}
}

func (c *LRU) Get(ns, key string) (*core.Result, bool) {
	full := ns + "\x00" + key
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[full]
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	c.ll.MoveToFront(el)
	c.hits.Add(1)
	return el.Value.(*lruEntry).res, true
}

func (c *LRU) Put(ns, key string, r *core.Result) {
	full := ns + "\x00" + key
	size := r.SizeBytes()
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[full]; ok {
		e := el.Value.(*lruEntry)
		c.bytes += size - e.size
		e.res, e.size = r, size
		c.ll.MoveToFront(el)
	} else {
		el := c.ll.PushFront(&lruEntry{ns: ns, key: full, res: r, size: size})
		c.items[full] = el
		c.bytes += size
	}
	// Evict coldest-first until within budget. The new entry sits at the
	// front, so it only goes when it alone exceeds the whole budget —
	// oversized results are simply not worth caching.
	for c.bytes > c.max && c.ll.Len() > 0 {
		c.removeLocked(c.ll.Back())
		c.evictions.Add(1)
		if c.onEvict != nil {
			c.onEvict()
		}
	}
}

// removeLocked unlinks one entry; caller holds c.mu.
func (c *LRU) removeLocked(el *list.Element) {
	e := el.Value.(*lruEntry)
	c.ll.Remove(el)
	delete(c.items, e.key)
	c.bytes -= e.size
}

// Invalidate drops every entry of the namespace whose served period
// overlaps any of the ranges — the engine's decay/streaming-append
// invalidation contract. Invalidation is rare (decay sweeps, fresh
// rows), so the linear scan is fine.
func (c *LRU) Invalidate(ns string, ranges []telco.TimeRange) {
	if len(ranges) == 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	var next *list.Element
	for el := c.ll.Front(); el != nil; el = next {
		next = el.Next()
		e := el.Value.(*lruEntry)
		if e.ns != ns {
			continue
		}
		for _, tr := range ranges {
			if e.res.ServedPeriod.Overlaps(tr) {
				c.removeLocked(el)
				c.invalidations.Add(1)
				if c.onInvalidate != nil {
					c.onInvalidate()
				}
				break
			}
		}
	}
}

// Clear drops the whole namespace (the engine's ingest-time cache
// clear); other engines' entries survive.
func (c *LRU) Clear(ns string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var next *list.Element
	for el := c.ll.Front(); el != nil; el = next {
		next = el.Next()
		if el.Value.(*lruEntry).ns == ns {
			c.removeLocked(el)
		}
	}
}

func (c *LRU) Stats() CacheStats {
	c.mu.Lock()
	entries, bytes := len(c.items), c.bytes
	c.mu.Unlock()
	return CacheStats{
		Entries:       entries,
		Bytes:         bytes,
		Hits:          c.hits.Load(),
		Misses:        c.misses.Load(),
		Evictions:     c.evictions.Load(),
		Invalidations: c.invalidations.Load(),
	}
}

// tiered probes tiers in order, promoting hits into every earlier tier;
// writes and invalidations apply to all tiers. With an in-proc LRU as
// tier 0 and a (future) external tier behind it, hot results stay local
// while the shared tier absorbs each miss fleet-wide once.
type tiered struct {
	tiers []Cache
}

// NewTiered composes cache tiers, fastest first.
func NewTiered(tiers ...Cache) Cache {
	if len(tiers) == 1 {
		return tiers[0]
	}
	return &tiered{tiers: tiers}
}

func (t *tiered) Get(ns, key string) (*core.Result, bool) {
	for i, c := range t.tiers {
		if r, ok := c.Get(ns, key); ok {
			for j := 0; j < i; j++ {
				t.tiers[j].Put(ns, key, r)
			}
			return r, true
		}
	}
	return nil, false
}

func (t *tiered) Put(ns, key string, r *core.Result) {
	for _, c := range t.tiers {
		c.Put(ns, key, r)
	}
}

func (t *tiered) Invalidate(ns string, ranges []telco.TimeRange) {
	for _, c := range t.tiers {
		c.Invalidate(ns, ranges)
	}
}

func (t *tiered) Clear(ns string) {
	for _, c := range t.tiers {
		c.Clear(ns)
	}
}

func (t *tiered) Stats() CacheStats {
	var out CacheStats
	for _, c := range t.tiers {
		s := c.Stats()
		out.Entries += s.Entries
		out.Bytes += s.Bytes
		out.Hits += s.Hits
		out.Misses += s.Misses
		out.Evictions += s.Evictions
		out.Invalidations += s.Invalidations
	}
	return out
}

// nsCache adapts one namespace of a shared Cache onto the engine's
// core.ResultCache contract, so core.Options.ResultCache can plug a
// process-wide cache in without core importing serving.
type nsCache struct {
	c  Cache
	ns string
}

// Namespace binds a shared cache to one engine's namespace.
func Namespace(c Cache, ns string) core.ResultCache {
	return nsCache{c: c, ns: ns}
}

func (n nsCache) Get(key string) (*core.Result, bool) { return n.c.Get(n.ns, key) }
func (n nsCache) Put(key string, r *core.Result)      { n.c.Put(n.ns, key, r) }
func (n nsCache) Invalidate(ranges []telco.TimeRange) { n.c.Invalidate(n.ns, ranges) }
func (n nsCache) Clear()                              { n.c.Clear(n.ns) }
