package serving

import (
	"math"
	"sync"
	"time"
)

// tokenBucket is a fractional token bucket whose denials carry honest,
// spaced retry hints. A plain bucket tells every concurrent denied
// caller "retry when one token refills" — they all come back at the same
// instant and collide again. This bucket counts denials since the last
// successful take and hints the k-th denier to return after k tokens
// will have refilled, so a thundering herd is spread over the refill
// schedule instead of synchronized onto it (the GCRA-style virtual
// scheduling view of a leaky bucket).
type tokenBucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second
	burst  float64
	tokens float64
	last   time.Time
	denied float64 // denials since the last successful take
}

// newTokenBucket builds a full bucket refilling at rate tokens/second up
// to burst.
func newTokenBucket(rate, burst float64) *tokenBucket {
	if burst < 1 {
		burst = 1
	}
	return &tokenBucket{rate: rate, burst: burst, tokens: burst}
}

// take attempts to consume one token at the given instant. On refusal it
// returns how long the caller should wait before its retry is likely to
// be admitted.
func (b *tokenBucket) take(now time.Time) (ok bool, retryAfter time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.last.IsZero() {
		b.last = now
	}
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens = math.Min(b.burst, b.tokens+dt*b.rate)
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		b.denied = 0
		return true, 0
	}
	b.denied++
	// The k-th denial waits for k whole tokens beyond the current level:
	// earlier deniers retry sooner, later ones later — non-constant by
	// construction.
	need := b.denied - b.tokens
	return false, time.Duration(need / b.rate * float64(time.Second))
}
