package serving

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"spate/internal/obs"
)

func TestTokenBucketSpacedRetryHints(t *testing.T) {
	b := newTokenBucket(2, 1) // 2 tokens/s, depth 1
	now := time.Unix(0, 0)
	if ok, _ := b.take(now); !ok {
		t.Fatal("first take from a full bucket should succeed")
	}
	// Consecutive denials at the same instant must get strictly
	// increasing hints: the k-th denier waits for the k-th refill.
	var prev time.Duration
	for k := 1; k <= 4; k++ {
		ok, retry := b.take(now)
		if ok {
			t.Fatalf("take %d should be denied", k)
		}
		if retry <= prev {
			t.Fatalf("denial %d: retry %v not greater than previous %v", k, retry, prev)
		}
		prev = retry
	}
	// After refill the bucket admits again and resets the denial count.
	ok, _ := b.take(now.Add(time.Second))
	if !ok {
		t.Fatal("take after refill should succeed")
	}
	_, r1 := b.take(now.Add(time.Second))
	if r1 >= prev {
		t.Fatalf("denial spacing should reset after a successful take: %v >= %v", r1, prev)
	}
}

func TestTokenBucketRefillCapsAtBurst(t *testing.T) {
	b := newTokenBucket(100, 2)
	now := time.Unix(0, 0)
	b.take(now)
	b.take(now)
	// An hour of refill still caps at burst: only two takes succeed.
	later := now.Add(time.Hour)
	admitted := 0
	for i := 0; i < 5; i++ {
		if ok, _ := b.take(later); ok {
			admitted++
		}
	}
	if admitted != 2 {
		t.Fatalf("admitted %d after refill, want burst=2", admitted)
	}
}

func TestLimiterQueueFullAndTimeout(t *testing.T) {
	lim := newLimiter(Limits{MaxConcurrent: 1, QueueDepth: 1, QueueWait: 30 * time.Millisecond})
	release, err := lim.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// One waiter fits in the queue and times out; launched first so it
	// occupies the queue slot when the third arrival shows up.
	errc := make(chan error, 1)
	go func() {
		_, err := lim.acquire(context.Background())
		errc <- err
	}()
	// Wait for the waiter to be queued.
	deadline := time.Now().Add(time.Second)
	for lim.queued() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never joined the queue")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := lim.acquire(context.Background()); err == nil {
		t.Fatal("third arrival should shed: queue is full")
	} else if se, ok := err.(*ShedError); !ok || se.Reason != ShedQueueFull {
		t.Fatalf("err = %v, want ShedError queue_full", err)
	}
	if err := <-errc; err == nil {
		t.Fatal("queued waiter should time out while the slot is held")
	} else if se, ok := err.(*ShedError); !ok || se.Reason != ShedQueueTimeout {
		t.Fatalf("err = %v, want ShedError queue_timeout", err)
	}
	release()
	// With the slot free the queue admits immediately.
	release2, err := lim.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	release2()
}

func TestParseTenants(t *testing.T) {
	base := Limits{RPS: 10, MaxConcurrent: 4}
	got, err := ParseTenants("gold:4, bronze ,silver:1.5", base)
	if err != nil {
		t.Fatal(err)
	}
	if l := got["gold"]; l.RPS != 40 || l.MaxConcurrent != 16 {
		t.Errorf("gold = %+v, want RPS 40 / MaxConcurrent 16", l)
	}
	if l := got["bronze"]; l.RPS != 10 || l.MaxConcurrent != 4 {
		t.Errorf("bronze = %+v, want base limits", l)
	}
	if l := got["silver"]; l.RPS != 15 || l.MaxConcurrent != 6 {
		t.Errorf("silver = %+v, want RPS 15 / MaxConcurrent 6", l)
	}
	for _, bad := range []string{"gold:0", "gold:-1", "gold:x", ":2", " ,"} {
		if _, err := ParseTenants(bad, base); err == nil {
			t.Errorf("ParseTenants(%q) should fail", bad)
		}
	}
	if got, err := ParseTenants("  ", base); err != nil || got != nil {
		t.Errorf("empty spec = %v, %v; want nil, nil", got, err)
	}
}

func TestClassOf(t *testing.T) {
	for path, want := range map[string]string{
		"/api/explore":  ClassQuery,
		"/api/sql":      ClassQuery,
		"/api/template": ClassQuery,
		"/api/playback": ClassQuery,
		"/api/append":   ClassAppend,
		"/":             "",
		"/metrics":      "",
		"/api/stats":    "",
		"/api/trace":    "",
	} {
		if got := ClassOf(path); got != want {
			t.Errorf("ClassOf(%q) = %q, want %q", path, got, want)
		}
	}
}

func TestSanitizeTenant(t *testing.T) {
	for in, want := range map[string]string{
		"":          DefaultTenant,
		"  ":        DefaultTenant,
		"gold":      "gold",
		" gold ":    "gold",
		"a\tb":      "a_b",
		"a\"b":      "a_b",
		"tenant\n1": "tenant_1",
	} {
		if got := sanitizeTenant(in); got != want {
			t.Errorf("sanitizeTenant(%q) = %q, want %q", in, got, want)
		}
	}
	long := make([]byte, 100)
	for i := range long {
		long[i] = 'x'
	}
	if got := sanitizeTenant(string(long)); len(got) != 64 {
		t.Errorf("long tenant name not capped: len=%d", len(got))
	}
}

func TestLabelSetBoundsCardinality(t *testing.T) {
	s := NewLabelSet(2)
	if s.Label("a") != "a" || s.Label("b") != "b" {
		t.Fatal("first two names should keep their identity")
	}
	if got := s.Label("c"); got != "other" {
		t.Fatalf("third name = %q, want other", got)
	}
	if s.Label("a") != "a" {
		t.Fatal("known names should stay stable once admitted")
	}
}

// TestControllerMiddlewareRateShed drives the middleware over a rate
// limit and checks the 429 contract: shed counter, JSON error envelope
// and a non-constant Retry-After across consecutive denials.
func TestControllerMiddlewareRateShed(t *testing.T) {
	reg := obs.NewRegistry()
	ctl := NewController(Config{Default: Limits{RPS: 0.5, Burst: 1}, Obs: reg})
	served := 0
	h := ctl.Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		served++
		if got := TenantFromContext(r.Context()); got != DefaultTenant {
			t.Errorf("tenant in context = %q, want %q", got, DefaultTenant)
		}
	}))
	codes := map[int]int{}
	retryAfters := map[string]bool{}
	for i := 0; i < 6; i++ {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", "/api/explore", nil))
		codes[rec.Code]++
		if rec.Code == http.StatusTooManyRequests {
			if ra := rec.Header().Get("Retry-After"); ra == "" {
				t.Error("429 without Retry-After")
			} else {
				retryAfters[ra] = true
			}
		}
	}
	if codes[http.StatusOK] != 1 || served != 1 {
		t.Fatalf("codes = %v served=%d, want exactly 1 admitted (burst=1)", codes, served)
	}
	if codes[http.StatusTooManyRequests] != 5 {
		t.Fatalf("codes = %v, want 5 rate sheds", codes)
	}
	if len(retryAfters) < 2 {
		t.Errorf("Retry-After values = %v, want at least 2 distinct (spaced hints)", retryAfters)
	}
}

// TestControllerMiddlewareExemptAndUnknownTenant checks that meta
// endpoints bypass admission entirely and unknown tenants share the
// default bucket.
func TestControllerMiddlewareExemptAndUnknownTenant(t *testing.T) {
	reg := obs.NewRegistry()
	ctl := NewController(Config{Default: Limits{RPS: 0.001, Burst: 1}, Obs: reg})
	h := ctl.Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	// Exempt endpoints never shed, whatever the rate.
	for i := 0; i < 10; i++ {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
		if rec.Code != http.StatusOK {
			t.Fatalf("exempt endpoint shed with %d", rec.Code)
		}
	}
	// Two unknown tenants drain one shared default bucket: one admit
	// total, not one each.
	admitted := 0
	for _, tenant := range []string{"mallory1", "mallory2"} {
		req := httptest.NewRequest("GET", "/api/explore", nil)
		req.Header.Set(TenantHeader, tenant)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code == http.StatusOK {
			admitted++
		}
	}
	if admitted != 1 {
		t.Fatalf("unknown tenants admitted %d, want 1 (shared default bucket)", admitted)
	}
}

// TestControllerConfiguredTenantIsolation checks that a configured
// tenant's budget is its own: exhausting default leaves gold unaffected.
func TestControllerConfiguredTenantIsolation(t *testing.T) {
	reg := obs.NewRegistry()
	ctl := NewController(Config{
		Default: Limits{RPS: 0.001, Burst: 1},
		Tenants: map[string]Limits{"gold": {RPS: 0.001, Burst: 2}},
		Obs:     reg,
	})
	h := ctl.Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	do := func(tenant string) int {
		req := httptest.NewRequest("GET", "/api/explore", nil)
		if tenant != "" {
			req.Header.Set(TenantHeader, tenant)
		}
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		return rec.Code
	}
	if do("") != http.StatusOK {
		t.Fatal("default's first request should be admitted")
	}
	if do("") != http.StatusTooManyRequests {
		t.Fatal("default's second request should shed (burst=1)")
	}
	if do("gold") != http.StatusOK || do("gold") != http.StatusOK {
		t.Fatal("gold's own burst=2 budget should admit twice despite default being drained")
	}
	if do("gold") != http.StatusTooManyRequests {
		t.Fatal("gold's third request should shed")
	}
}

func TestWriteRetryAfter(t *testing.T) {
	for d, want := range map[time.Duration]string{
		0:                       "1",
		time.Millisecond:        "1",
		time.Second:             "1",
		1500 * time.Millisecond: "2",
		3 * time.Second:         "3",
	} {
		h := http.Header{}
		WriteRetryAfter(h, d)
		if got := h.Get("Retry-After"); got != want {
			t.Errorf("WriteRetryAfter(%v) = %q, want %q", d, got, want)
		}
	}
}
