// Integration tests of the serving tier against the real HTTP surfaces:
// answer parity (an admitted request must be bit-for-bit what the
// unprotected path serves), and thundering-herd behaviour (a zipf-skewed
// client fleet collapses onto roughly one evaluation per hot window
// through the shared cache plus singleflight, with honest spaced
// Retry-After hints on the shed remainder).
package serving_test

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"
	"time"

	"spate/internal/cluster"
	_ "spate/internal/compress/all"
	"spate/internal/core"
	"spate/internal/dfs"
	"spate/internal/gen"
	"spate/internal/obs"
	"spate/internal/serving"
	"spate/internal/snapshot"
	"spate/internal/telco"
	"spate/internal/webui"
)

// testGen builds the small deterministic workload every variant ingests.
func testGen() (*gen.Generator, gen.Config) {
	cfg := gen.DefaultConfig(0.002)
	cfg.Antennas = 12
	cfg.Users = 80
	cfg.CDRPerEpoch = 40
	cfg.NMSReportsPerCell = 0.5
	return gen.New(cfg), cfg
}

// newEngine opens an engine over a fresh store and ingests 4 epochs.
func newEngine(t *testing.T, opts core.Options) (*core.Engine, telco.TimeRange, []gen.Cell) {
	t.Helper()
	g, cfg := testGen()
	fs, err := dfs.NewCluster(t.TempDir(), dfs.Config{BlockSize: 1 << 20, DataNodes: 2, Replication: 1})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.Open(fs, g.CellTable(), opts)
	if err != nil {
		t.Fatal(err)
	}
	e0 := telco.EpochOf(cfg.Start)
	for i := 0; i < 4; i++ {
		sn := snapshot.New(e0 + telco.Epoch(i))
		sn.Add(g.CDRTable(sn.Epoch))
		sn.Add(g.NMSTable(sn.Epoch))
		if _, err := eng.Ingest(sn); err != nil {
			t.Fatal(err)
		}
	}
	eng.FinishIngest()
	return eng, telco.NewTimeRange(cfg.Start, cfg.Start.Add(2*time.Hour)), g.Cells()
}

// fetchCanonical fetches url and returns the JSON body with the volatile
// fields (per-run timings and trace identity) stripped, so two answers
// compare structurally equal exactly when their data agrees.
func fetchCanonical(t *testing.T, url string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatalf("decode %s: %v (%s)", url, err, body)
	}
	delete(m, "stages_ms")
	delete(m, "trace_id")
	return resp.StatusCode, m
}

// exploreURLs is the query mix both parity variants replay, including
// repeats (cache-hit answers must agree too) and boxed windows. Every
// query pins attr: without it the per-cell value is taken from whichever
// attribute map iteration lands on, which differs even between two bare
// servers and would mask real divergence.
func exploreURLs(base string, window telco.TimeRange) []string {
	from, to := window.From.Format(telco.TimeLayout), window.To.Format(telco.TimeLayout)
	mid := window.From.Add(30 * time.Minute).Format(telco.TimeLayout)
	const attr = "attr=CDR.downflux"
	return []string{
		base + "/api/explore?" + attr,
		base + "/api/explore?from=" + from + "&to=" + to + "&" + attr,
		base + "/api/explore?from=" + from + "&to=" + mid + "&" + attr,
		base + "/api/explore?from=" + from + "&to=" + to + "&minx=0&miny=0&maxx=5&maxy=5&" + attr,
		base + "/api/explore?from=" + from + "&to=" + to + "&" + attr, // repeat: cache hit
	}
}

// TestServingParitySingleNode pins the acceptance contract on the
// single-engine server: the admission middleware plus the shared result
// cache must not change one byte of an admitted answer relative to an
// unprotected engine over the same data.
func TestServingParitySingleNode(t *testing.T) {
	// Variant A: bare server, built-in engine cache, no admission.
	engA, window, cells := newEngine(t, core.Options{Obs: obs.NewRegistry()})
	srvA := httptest.NewServer(webui.NewServer(engA, cells, window).Handler())
	defer srvA.Close()

	// Variant B: shared serving cache and generous admission in front.
	shared := serving.NewUnregisteredLRU(32 << 20)
	engB, _, _ := newEngine(t, core.Options{
		Obs:         obs.NewRegistry(),
		ResultCache: serving.Namespace(shared, "engine"),
	})
	uiB := webui.NewServer(engB, cells, window)
	uiB.SetAdmission(serving.NewController(serving.Config{
		Default: serving.Limits{RPS: 10000, MaxConcurrent: 64},
		Obs:     obs.NewRegistry(),
	}))
	srvB := httptest.NewServer(uiB.Handler())
	defer srvB.Close()

	urlsA := exploreURLs(srvA.URL, window)
	urlsB := exploreURLs(srvB.URL, window)
	for i := range urlsA {
		codeA, a := fetchCanonical(t, urlsA[i])
		codeB, b := fetchCanonical(t, urlsB[i])
		if codeA != 200 || codeB != 200 {
			t.Fatalf("query %d: status %d vs %d", i, codeA, codeB)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("query %d: admitted answer diverges from unprotected path\nbare:    %v\nserving: %v", i, a, b)
		}
	}
	if st := shared.Stats(); st.Entries == 0 || st.Hits == 0 {
		t.Errorf("shared cache unused: %+v (the serving path should populate and hit it)", st)
	}
}

// TestServingParityCluster runs the same contract over a 4-shard local
// cluster: one coordinator, two UI servers — admission-fronted and bare
// — must serve identical scatter-gathered answers.
func TestServingParityCluster(t *testing.T) {
	if testing.Short() {
		t.Skip("boots a 4-node loopback cluster")
	}
	g, cfg := testGen()
	shared := serving.NewUnregisteredLRU(32 << 20)
	local, err := cluster.StartLocal(
		cluster.Config{Shards: 4, Obs: obs.NewRegistry(), Tracer: obs.NewTracer(64)},
		g.CellTable(),
		cluster.LocalOptions{
			Dir:         t.TempDir(),
			Engine:      core.Options{Obs: obs.NewRegistry()},
			ResultCache: shared,
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	defer local.Close()
	e0 := telco.EpochOf(cfg.Start)
	for i := 0; i < 4; i++ {
		sn := snapshot.New(e0 + telco.Epoch(i))
		sn.Add(g.CDRTable(sn.Epoch))
		sn.Add(g.NMSTable(sn.Epoch))
		if err := local.Coordinator.Ingest(context.Background(), sn); err != nil {
			t.Fatal(err)
		}
	}
	if err := local.Coordinator.FinishIngest(context.Background()); err != nil {
		t.Fatal(err)
	}
	window := telco.NewTimeRange(cfg.Start, cfg.Start.Add(2*time.Hour))

	bare := httptest.NewServer(webui.NewClusterServer(local.Coordinator, g.Cells(), window).Handler())
	defer bare.Close()
	guarded := webui.NewClusterServer(local.Coordinator, g.Cells(), window)
	guarded.SetAdmission(serving.NewController(serving.Config{
		Default: serving.Limits{RPS: 10000, MaxConcurrent: 64},
		Obs:     obs.NewRegistry(),
	}))
	srvG := httptest.NewServer(guarded.Handler())
	defer srvG.Close()

	urlsA := exploreURLs(bare.URL, window)
	urlsB := exploreURLs(srvG.URL, window)
	for i := range urlsA {
		codeA, a := fetchCanonical(t, urlsA[i])
		codeB, b := fetchCanonical(t, urlsB[i])
		if codeA != 200 || codeB != 200 {
			t.Fatalf("query %d: status %d vs %d", i, codeA, codeB)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("query %d: admitted cluster answer diverges\nbare:    %v\nserving: %v", i, a, b)
		}
	}
}

// TestThunderingHerd sends a concurrent zipf-skewed volley at an
// admission-fronted server and checks the serving tier's three promises:
// hot windows evaluate roughly once (shared cache + singleflight), the
// over-limit remainder sheds with 429, and the shed hints are honest —
// spaced over the refill schedule, not one constant.
func TestThunderingHerd(t *testing.T) {
	engReg := obs.NewRegistry()
	shared := serving.NewUnregisteredLRU(32 << 20)
	eng, window, cells := newEngine(t, core.Options{
		Obs:         engReg,
		ResultCache: serving.Namespace(shared, "engine"),
	})
	_ = eng
	ui := webui.NewServer(eng, cells, window)
	ctl := serving.NewController(serving.Config{
		Default: serving.Limits{RPS: 1, Burst: 4, MaxConcurrent: 8},
		Obs:     obs.NewRegistry(),
	})
	ui.SetAdmission(ctl)
	srv := httptest.NewServer(ui.Handler())
	defer srv.Close()

	// Three hot windows, zipf-ish skew: half the fleet hammers window 0.
	from := window.From
	windows := []string{
		"?from=" + from.Format(telco.TimeLayout) + "&to=" + from.Add(30*time.Minute).Format(telco.TimeLayout),
		"?from=" + from.Format(telco.TimeLayout) + "&to=" + from.Add(time.Hour).Format(telco.TimeLayout),
		"?from=" + from.Add(30*time.Minute).Format(telco.TimeLayout) + "&to=" + from.Add(90*time.Minute).Format(telco.TimeLayout),
	}
	pick := func(i int) string {
		switch {
		case i%2 == 0:
			return windows[0]
		case i%4 == 1:
			return windows[1]
		default:
			return windows[2]
		}
	}

	var (
		mu          sync.Mutex
		ok, shed    int
		retryAfters = map[string]bool{}
	)
	var wg sync.WaitGroup
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				resp, err := http.Get(srv.URL + "/api/explore" + pick(c*8+i))
				if err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				mu.Lock()
				switch resp.StatusCode {
				case http.StatusOK:
					ok++
				case http.StatusTooManyRequests:
					shed++
					retryAfters[resp.Header.Get("Retry-After")] = true
				default:
					t.Errorf("unexpected status %d", resp.StatusCode)
				}
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()

	if ok == 0 {
		t.Fatal("herd fully shed: no admitted requests")
	}
	if shed == 0 {
		t.Fatal("herd fully admitted: rate limit never engaged (64 requests at burst 4)")
	}
	if len(retryAfters) < 2 {
		t.Errorf("Retry-After values = %v, want >= 2 distinct (spaced backoff)", retryAfters)
	}
	// Every admitted request beyond the first per window must come from
	// the shared cache or an in-flight evaluation: misses stay bounded by
	// the number of distinct hot windows.
	misses := engReg.Counter("spate_explore_cache_misses_total", "").Value()
	if misses > int64(len(windows)) {
		t.Errorf("engine evaluated %d times for %d hot windows: shared cache/singleflight not collapsing the herd", misses, len(windows))
	}
	hits := engReg.Counter("spate_explore_cache_hits_total", "").Value()
	shared901 := engReg.Counter("spate_result_singleflight_shared_total", "").Value()
	if hits+shared901 == 0 {
		t.Error("no cache hits or singleflight shares across the herd")
	}
	if st := shared.Stats(); st.Hits == 0 {
		t.Errorf("shared cache stats = %+v, want hits > 0", st)
	}
}

// TestBackpressureRetryAfterPropagates checks the satellite contract on
// /api/append: a backpressured streamer's 429 carries a Retry-After
// derived from its actual backlog state instead of the historical
// constant 1.
func TestBackpressureRetryAfterPropagates(t *testing.T) {
	err := &core.BackpressureError{RetryAfter: 3500 * time.Millisecond}
	wrapped := fmt.Errorf("append: %w", err)
	if got := serving.RetryAfterFromError(wrapped, time.Second); got != 3500*time.Millisecond {
		t.Errorf("RetryAfterFromError = %v, want 3.5s", got)
	}
	h := http.Header{}
	serving.WriteRetryAfter(h, serving.RetryAfterFromError(wrapped, time.Second))
	if got := h.Get("Retry-After"); got != "4" {
		t.Errorf("Retry-After = %q, want 4 (ceil of 3.5s)", got)
	}
}
