package serving

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"spate/internal/core"
	"spate/internal/telco"
)

func window(fromHour, toHour int) telco.TimeRange {
	base := time.Date(2016, 1, 1, 0, 0, 0, 0, time.UTC)
	return telco.NewTimeRange(base.Add(time.Duration(fromHour)*time.Hour), base.Add(time.Duration(toHour)*time.Hour))
}

func res(fromHour, toHour int) *core.Result {
	return &core.Result{ServedPeriod: window(fromHour, toHour)}
}

func TestLRUEvictsColdestFirst(t *testing.T) {
	unit := res(0, 1).SizeBytes()
	c := NewUnregisteredLRU(3 * unit)
	c.Put("ns", "a", res(0, 1))
	c.Put("ns", "b", res(1, 2))
	c.Put("ns", "c", res(2, 3))
	c.Get("ns", "a") // refresh a: b is now coldest
	c.Put("ns", "d", res(3, 4))
	if _, ok := c.Get("ns", "b"); ok {
		t.Error("b was coldest and should have been evicted")
	}
	for _, k := range []string{"a", "c", "d"} {
		if _, ok := c.Get("ns", k); !ok {
			t.Errorf("%s should still be cached", k)
		}
	}
	st := c.Stats()
	if st.Entries != 3 || st.Evictions != 1 {
		t.Errorf("stats = %+v, want 3 entries / 1 eviction", st)
	}
	if st.Bytes != 3*unit {
		t.Errorf("bytes = %d, want %d", st.Bytes, 3*unit)
	}
}

func TestLRUReplaceAdjustsBytes(t *testing.T) {
	unit := res(0, 1).SizeBytes()
	c := NewUnregisteredLRU(10 * unit)
	c.Put("ns", "a", res(0, 1))
	c.Put("ns", "a", res(0, 2)) // replace, same estimated size
	st := c.Stats()
	if st.Entries != 1 || st.Bytes != unit {
		t.Errorf("stats after replace = %+v, want 1 entry / %d bytes", st, unit)
	}
}

func TestLRUNamespacesAreIsolated(t *testing.T) {
	c := NewUnregisteredLRU(1 << 20)
	c.Put("eng1", "k", res(0, 2))
	c.Put("eng2", "k", res(4, 6))
	// Same user key, different namespaces: distinct entries.
	if st := c.Stats(); st.Entries != 2 {
		t.Fatalf("entries = %d, want 2", st.Entries)
	}
	// Clear drops only its namespace.
	c.Clear("eng1")
	if _, ok := c.Get("eng1", "k"); ok {
		t.Error("eng1 entry should be cleared")
	}
	if _, ok := c.Get("eng2", "k"); !ok {
		t.Error("eng2 entry should survive eng1's clear")
	}
	// Invalidate scopes to its namespace even when periods overlap.
	c.Put("eng1", "k", res(4, 6))
	c.Invalidate("eng1", []telco.TimeRange{window(4, 6)})
	if _, ok := c.Get("eng1", "k"); ok {
		t.Error("eng1 entry overlaps the stale range: should drop")
	}
	if _, ok := c.Get("eng2", "k"); !ok {
		t.Error("eng2 entry must survive eng1's invalidation")
	}
}

func TestLRUInvalidateHalfOpenBoundaries(t *testing.T) {
	c := NewUnregisteredLRU(1 << 20)
	c.Put("ns", "before", res(0, 2))  // adjacent below [2,4)
	c.Put("ns", "overlap", res(3, 5)) // overlaps [2,4)
	c.Put("ns", "after", res(4, 6))   // adjacent above [2,4)
	c.Invalidate("ns", []telco.TimeRange{window(2, 4)})
	if _, ok := c.Get("ns", "before"); !ok {
		t.Error("adjacent-below entry must survive (half-open ranges)")
	}
	if _, ok := c.Get("ns", "after"); !ok {
		t.Error("adjacent-above entry must survive (half-open ranges)")
	}
	if _, ok := c.Get("ns", "overlap"); ok {
		t.Error("overlapping entry must drop")
	}
	if st := c.Stats(); st.Invalidations != 1 {
		t.Errorf("invalidations = %d, want 1", st.Invalidations)
	}
}

func TestLRUOversizedResultNotRetained(t *testing.T) {
	c := NewUnregisteredLRU(1) // smaller than any result
	c.Put("ns", "k", res(0, 1))
	if _, ok := c.Get("ns", "k"); ok {
		t.Error("a result larger than the whole budget should not be retained")
	}
	if st := c.Stats(); st.Bytes != 0 || st.Entries != 0 {
		t.Errorf("stats = %+v, want empty cache", st)
	}
}

func TestTieredPromotesOnHit(t *testing.T) {
	t0 := NewUnregisteredLRU(1 << 20)
	t1 := NewUnregisteredLRU(1 << 20)
	c := NewTiered(t0, t1)
	// Seed only the slow tier, as if another process had populated it.
	t1.Put("ns", "k", res(0, 2))
	if _, ok := c.Get("ns", "k"); !ok {
		t.Fatal("tiered get should find the entry in tier 1")
	}
	if _, ok := t0.Get("ns", "k"); !ok {
		t.Error("hit should promote the entry into tier 0")
	}
	// Writes and invalidations fan out to every tier.
	c.Put("ns", "j", res(4, 6))
	if _, ok := t1.Get("ns", "j"); !ok {
		t.Error("put should reach every tier")
	}
	c.Invalidate("ns", []telco.TimeRange{window(0, 6)})
	for name, tier := range map[string]*LRU{"t0": t0, "t1": t1} {
		if st := tier.Stats(); st.Entries != 0 {
			t.Errorf("%s still holds %d entries after invalidate", name, st.Entries)
		}
	}
}

func TestNamespaceAdapter(t *testing.T) {
	shared := NewUnregisteredLRU(1 << 20)
	var rc core.ResultCache = Namespace(shared, "eng1")
	rc.Put("k", res(0, 2))
	if _, ok := rc.Get("k"); !ok {
		t.Fatal("adapter get should hit")
	}
	if _, ok := shared.Get("eng1", "k"); !ok {
		t.Fatal("adapter should write through to its namespace")
	}
	rc.Invalidate([]telco.TimeRange{window(1, 3)})
	if _, ok := rc.Get("k"); ok {
		t.Error("adapter invalidate should drop the overlapping entry")
	}
	rc.Put("k", res(0, 2))
	rc.Clear()
	if st := shared.Stats(); st.Entries != 0 {
		t.Errorf("adapter clear left %d entries", st.Entries)
	}
}

// TestLRUConcurrent exercises the shared cache from many goroutines over
// several namespaces; run under -race it pins the concurrency contract
// engines rely on when they share one cache.
func TestLRUConcurrent(t *testing.T) {
	c := NewUnregisteredLRU(64 << 10)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ns := fmt.Sprintf("eng%d", g%3)
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", (g+i)%16)
				switch i % 4 {
				case 0:
					c.Put(ns, key, res(i%6, i%6+2))
				case 1, 2:
					c.Get(ns, key)
				case 3:
					if i%40 == 3 {
						c.Invalidate(ns, []telco.TimeRange{window(i%4, i%4+1)})
					} else if i%80 == 43 {
						c.Clear(ns)
					} else {
						c.Stats()
					}
				}
			}
		}(g)
	}
	wg.Wait()
}
