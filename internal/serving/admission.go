package serving

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"spate/internal/obs"
)

// Endpoint classes: every admitted path belongs to one, and limits apply
// per (tenant, class) so a tenant's heavy append stream cannot starve its
// own dashboards (or vice versa). Meta endpoints — the UI page, metrics,
// traces, health — are never shed: operators must be able to see a
// saturated server.
const (
	ClassQuery  = "query"
	ClassAppend = "append"
)

// ClassOf maps a request path to its admission class, "" for exempt
// endpoints.
func ClassOf(path string) string {
	switch path {
	case "/api/explore", "/api/sql", "/api/template", "/api/playback":
		return ClassQuery
	case "/api/append":
		return ClassAppend
	}
	return ""
}

// Limits bounds one (tenant, class) pair. The zero value means
// unlimited.
type Limits struct {
	// RPS is the sustained token-bucket refill rate in requests per
	// second; 0 disables rate limiting.
	RPS float64
	// Burst is the bucket depth (default max(1, 2×RPS)).
	Burst int
	// MaxConcurrent caps requests in flight; 0 disables the cap.
	MaxConcurrent int
	// QueueDepth bounds the FIFO wait queue behind the concurrency cap
	// (default 4×MaxConcurrent). Arrivals past the bound shed with 503.
	QueueDepth int
	// QueueWait is how long a queued request waits for a slot before
	// shedding (default 500ms); the request's own context deadline cuts
	// the wait short.
	QueueWait time.Duration
}

func (l Limits) withDefaults() Limits {
	if l.Burst <= 0 {
		l.Burst = int(math.Max(1, 2*l.RPS))
	}
	if l.QueueDepth <= 0 && l.MaxConcurrent > 0 {
		l.QueueDepth = 4 * l.MaxConcurrent
	}
	if l.QueueWait <= 0 {
		l.QueueWait = 500 * time.Millisecond
	}
	return l
}

// unlimited reports whether the limits impose nothing at all.
func (l Limits) unlimited() bool { return l.RPS <= 0 && l.MaxConcurrent <= 0 }

// ParseTenants parses a "-tenants" style spec — comma-separated
// name[:weight] entries — into per-tenant limits scaled from base. A
// weight multiplies the base RPS and concurrency cap (gold:4 gets 4× the
// default tenant's budget). Returns nil for an empty spec.
func ParseTenants(spec string, base Limits) (map[string]Limits, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	out := make(map[string]Limits)
	for _, part := range strings.Split(spec, ",") {
		name, wstr, hasW := strings.Cut(strings.TrimSpace(part), ":")
		if name == "" {
			return nil, fmt.Errorf("serving: empty tenant name in %q", spec)
		}
		w := 1.0
		if hasW {
			var err error
			if w, err = strconv.ParseFloat(wstr, 64); err != nil || w <= 0 {
				return nil, fmt.Errorf("serving: bad weight %q for tenant %q", wstr, name)
			}
		}
		l := base
		l.RPS *= w
		if l.MaxConcurrent > 0 {
			l.MaxConcurrent = int(math.Ceil(float64(l.MaxConcurrent) * w))
		}
		out[sanitizeTenant(name)] = l
	}
	return out, nil
}

// Shed reasons, also the reason label of spate_serving_shed_total.
const (
	ShedRate         = "rate"
	ShedQueueFull    = "queue_full"
	ShedQueueTimeout = "queue_timeout"
)

// ShedError is a load-shedding refusal: the HTTP status to serve, why,
// and when a retry is worth making.
type ShedError struct {
	Status     int
	Reason     string
	RetryAfter time.Duration
}

func (e *ShedError) Error() string {
	return fmt.Sprintf("serving: request shed (%s); retry in %v", e.Reason, e.RetryAfter)
}

// limiter is the concurrency half of one (tenant, class): a slot
// semaphore fronted by a bounded FIFO wait queue. Goroutines blocked on
// a channel send are served first-come-first-served by the runtime, so
// the queue preserves arrival order without explicit tickets.
type limiter struct {
	slots chan struct{} // nil = no concurrency cap
	queue chan struct{} // occupancy tickets bounding waiters
	wait  time.Duration
}

func newLimiter(l Limits) *limiter {
	lim := &limiter{wait: l.QueueWait}
	if l.MaxConcurrent > 0 {
		lim.slots = make(chan struct{}, l.MaxConcurrent)
		lim.queue = make(chan struct{}, l.QueueDepth)
	}
	return lim
}

// acquire claims a slot, waiting in the FIFO queue up to wait (or the
// request deadline, whichever is sooner). It returns the release
// function on admission and a *ShedError (or ctx error) on refusal.
func (l *limiter) acquire(ctx context.Context) (release func(), err error) {
	if l.slots == nil {
		return func() {}, nil
	}
	select {
	case l.slots <- struct{}{}:
		return l.release, nil
	default:
	}
	// Join the bounded wait queue; a full queue sheds immediately — the
	// server is past the point where waiting helps anyone.
	select {
	case l.queue <- struct{}{}:
	default:
		return nil, &ShedError{Status: http.StatusServiceUnavailable, Reason: ShedQueueFull, RetryAfter: l.overloadHint()}
	}
	defer func() { <-l.queue }()
	t := time.NewTimer(l.wait)
	defer t.Stop()
	select {
	case l.slots <- struct{}{}:
		return l.release, nil
	case <-t.C:
		return nil, &ShedError{Status: http.StatusServiceUnavailable, Reason: ShedQueueTimeout, RetryAfter: l.overloadHint()}
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func (l *limiter) release() { <-l.slots }

// overloadHint scales the retry hint with queue occupancy: the deeper
// the backlog a shed request saw, the longer it should stay away.
func (l *limiter) overloadHint() time.Duration {
	occupancy := 1.0
	if c := cap(l.queue); c > 0 {
		occupancy += float64(len(l.queue)) / float64(c)
	}
	return time.Duration(occupancy * float64(l.wait))
}

// queued is the current FIFO wait-queue depth.
func (l *limiter) queued() int { return len(l.queue) }

// Config configures a Controller.
type Config struct {
	// Default limits apply to the DefaultTenant bucket, which absorbs
	// requests without a tenant header and all unknown tenants.
	Default Limits
	// Tenants get their own buckets and metric labels (see ParseTenants).
	Tenants map[string]Limits
	// Obs is the metrics registry (default obs.Default).
	Obs *obs.Registry
}

// state is the admission machinery of one (tenant, class).
type state struct {
	bucket *tokenBucket // nil = no rate limit
	lim    *limiter

	admitted *obs.Counter
	inflight *obs.Gauge
	shed     map[string]*obs.Counter
}

// Controller is the admission tier: one token bucket + FIFO-queued
// concurrency limiter per (tenant, class), created lazily and bounded by
// the configured tenant set. Safe for concurrent use.
type Controller struct {
	cfg Config

	mu     sync.Mutex
	states map[string]*state

	queueWaitSec *obs.Histogram
	retryAfter   *obs.Histogram
}

// NewController builds an admission controller.
func NewController(cfg Config) *Controller {
	if cfg.Obs == nil {
		cfg.Obs = obs.Default
	}
	cfg.Default = cfg.Default.withDefaults()
	tenants := make(map[string]Limits, len(cfg.Tenants))
	for name, l := range cfg.Tenants {
		tenants[sanitizeTenant(name)] = l.withDefaults()
	}
	cfg.Tenants = tenants
	return &Controller{
		cfg:    cfg,
		states: make(map[string]*state),
		queueWaitSec: cfg.Obs.Histogram("spate_serving_queue_wait_seconds",
			"Time admitted requests spent in the FIFO admission queue.", obs.ExpBuckets(1e-4, 4, 10)),
		retryAfter: cfg.Obs.Histogram("spate_serving_retry_after_seconds",
			"Retry-After hints handed to shed requests.", obs.ExpBuckets(0.5, 2, 8)),
	}
}

// resolve maps a request tenant onto its bucket identity: configured
// tenants keep their name, everyone else shares the default bucket and
// label (bounding both fairness state and metric cardinality).
func (c *Controller) resolve(tenant string) (string, Limits) {
	if l, ok := c.cfg.Tenants[tenant]; ok {
		return tenant, l
	}
	return DefaultTenant, c.cfg.Default
}

// state returns (creating on first use) the admission state of one
// (tenant, class) pair.
func (c *Controller) state(tenant, class string) *state {
	key := tenant + "\x00" + class
	c.mu.Lock()
	defer c.mu.Unlock()
	if st, ok := c.states[key]; ok {
		return st
	}
	_, lim := c.resolve(tenant)
	st := &state{
		lim: newLimiter(lim),
		admitted: c.cfg.Obs.Counter("spate_serving_admitted_total",
			"Requests admitted past the serving tier.", "tenant", tenant, "class", class),
		inflight: c.cfg.Obs.Gauge("spate_serving_inflight",
			"Admitted requests currently in flight.", "tenant", tenant, "class", class),
		shed: map[string]*obs.Counter{},
	}
	if lim.RPS > 0 {
		st.bucket = newTokenBucket(lim.RPS, float64(lim.Burst))
	}
	for _, reason := range []string{ShedRate, ShedQueueFull, ShedQueueTimeout} {
		st.shed[reason] = c.cfg.Obs.Counter("spate_serving_shed_total",
			"Requests shed by the serving tier, by reason.",
			"tenant", tenant, "class", class, "reason", reason)
	}
	l := st.lim
	c.cfg.Obs.GaugeFunc("spate_serving_queue_depth",
		"Requests waiting in the FIFO admission queue.",
		func() float64 { return float64(l.queued()) },
		"tenant", tenant, "class", class)
	c.states[key] = st
	return st
}

// Middleware fronts next with the admission pipeline: resolve tenant →
// stamp context → rate bucket → FIFO concurrency queue → serve. Shed
// requests never reach next; exempt endpoints (UI, metrics, traces)
// bypass everything but the tenant stamp.
func (c *Controller) Middleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		tenant := TenantFromHeader(r.Header)
		r = r.WithContext(ContextWithTenant(r.Context(), tenant))
		class := ClassOf(r.URL.Path)
		if class == "" {
			next.ServeHTTP(w, r)
			return
		}
		bucketTenant, _ := c.resolve(tenant)
		st := c.state(bucketTenant, class)
		if st.bucket != nil {
			if ok, retry := st.bucket.take(time.Now()); !ok {
				c.shed(w, st, &ShedError{Status: http.StatusTooManyRequests, Reason: ShedRate, RetryAfter: retry})
				return
			}
		}
		t0 := time.Now()
		release, err := st.lim.acquire(r.Context())
		if err != nil {
			var se *ShedError
			if !errors.As(err, &se) {
				// The caller's own context expired or canceled while
				// queued: it is gone, but account the shed honestly.
				se = &ShedError{Status: http.StatusServiceUnavailable, Reason: ShedQueueTimeout, RetryAfter: st.lim.overloadHint()}
			}
			c.shed(w, st, se)
			return
		}
		defer release()
		if wait := time.Since(t0); wait > 0 {
			c.queueWaitSec.Observe(wait.Seconds())
		}
		st.admitted.Inc()
		st.inflight.Add(1)
		defer st.inflight.Add(-1)
		next.ServeHTTP(w, r)
	})
}

// shed writes a load-shedding refusal: Retry-After plus a JSON error
// body, mirroring the API's error envelope.
func (c *Controller) shed(w http.ResponseWriter, st *state, se *ShedError) {
	st.shed[se.Reason].Inc()
	c.retryAfter.Observe(se.RetryAfter.Seconds())
	WriteRetryAfter(w.Header(), se.RetryAfter)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(se.Status)
	json.NewEncoder(w).Encode(map[string]string{"error": se.Error()})
}
