// Package serving is the multi-tenant admission tier in front of the
// SPATE HTTP surfaces: per-tenant token-bucket rate limits and
// concurrency caps with load shedding (429 with an honest Retry-After
// derived from bucket refill, 503 on queue overflow), a bounded FIFO
// admission queue so briefly-over-limit queries wait instead of failing,
// and a shared bytes-bounded result cache every local engine plugs into
// through core.Options.ResultCache.
//
// Tenant identity rides on the X-Spate-Tenant header. The admission
// middleware stamps it into the request context; the cluster client
// re-injects it into shard RPCs, so per-shard load is attributable to
// the tenant that caused it.
package serving

import (
	"context"
	"errors"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"spate/internal/core"
)

// TenantHeader names the HTTP header carrying the caller's tenant
// identity, end to end: client → admission middleware → request context
// → cluster RPC → shard node.
const TenantHeader = "X-Spate-Tenant"

// DefaultTenant is the identity of requests without a tenant header.
// Unknown tenants also account under it, so one client inventing names
// cannot blow up metric cardinality or mint fresh rate buckets.
const DefaultTenant = "default"

type tenantCtxKey struct{}

// ContextWithTenant stamps a tenant identity into ctx.
func ContextWithTenant(ctx context.Context, tenant string) context.Context {
	if tenant == "" {
		return ctx
	}
	return context.WithValue(ctx, tenantCtxKey{}, tenant)
}

// TenantFromContext returns the tenant stamped into ctx, "" when none.
func TenantFromContext(ctx context.Context) string {
	t, _ := ctx.Value(tenantCtxKey{}).(string)
	return t
}

// TenantFromHeader reads the sanitized tenant identity from request
// headers, DefaultTenant when absent.
func TenantFromHeader(h http.Header) string {
	return sanitizeTenant(h.Get(TenantHeader))
}

// InjectTenant writes the tenant carried by ctx into outgoing request
// headers — the cluster client calls this so shard RPCs stay
// attributable to the originating tenant.
func InjectTenant(ctx context.Context, h http.Header) {
	if t := TenantFromContext(ctx); t != "" {
		h.Set(TenantHeader, t)
	}
}

// sanitizeTenant bounds a caller-supplied tenant name: length-capped and
// restricted to printable non-space characters, so hostile headers cannot
// smuggle junk into metric labels or log lines.
func sanitizeTenant(name string) string {
	name = strings.TrimSpace(name)
	if name == "" {
		return DefaultTenant
	}
	if len(name) > 64 {
		name = name[:64]
	}
	var b strings.Builder
	for _, r := range name {
		if r <= ' ' || r == 0x7f || r == '"' {
			b.WriteByte('_')
		} else {
			b.WriteRune(r)
		}
	}
	return b.String()
}

// WriteRetryAfter sets the Retry-After header from a duration, rounded
// up to whole seconds (the header's only portable unit) with a 1s floor.
// Shared by every shed path — the admission 429/503s and the streaming
// backpressure 429s — so clients see one consistent hint format.
func WriteRetryAfter(h http.Header, d time.Duration) {
	secs := int64((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	h.Set("Retry-After", strconv.FormatInt(secs, 10))
}

// RetryAfterFromError extracts the retry hint carried by a typed
// backpressure error, falling back when the error carries none.
func RetryAfterFromError(err error, fallback time.Duration) time.Duration {
	var bp *core.BackpressureError
	if errors.As(err, &bp) && bp.RetryAfter > 0 {
		return bp.RetryAfter
	}
	return fallback
}

// LabelSet bounds a metric label's value set: the first Max distinct
// names keep their identity, later ones collapse to "other". Shard nodes
// use it to keep tenant-labelled series finite without knowing the
// coordinator's tenant configuration.
type LabelSet struct {
	mu    sync.Mutex
	max   int
	known map[string]struct{}
}

// NewLabelSet builds a label set admitting max distinct values.
func NewLabelSet(max int) *LabelSet {
	return &LabelSet{max: max, known: make(map[string]struct{})}
}

// Label returns name when it is (or can still become) a tracked value,
// "other" once the set is full.
func (s *LabelSet) Label(name string) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.known[name]; ok {
		return name
	}
	if len(s.known) < s.max {
		s.known[name] = struct{}{}
		return name
	}
	return "other"
}
