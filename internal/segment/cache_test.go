package segment_test

import (
	"fmt"
	"sync"
	"testing"

	"spate/internal/obs"
	"spate/internal/segment"
)

func TestCacheByteBoundAndLRU(t *testing.T) {
	reg := obs.NewRegistry()
	c := segment.NewCache(100, reg)
	c.Put("a", make([]byte, 40))
	c.Put("b", make([]byte, 40))
	if c.Bytes() != 80 || c.Len() != 2 {
		t.Fatalf("cache holds %d bytes / %d entries", c.Bytes(), c.Len())
	}
	// Touch "a" so "b" becomes the LRU victim.
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a missing")
	}
	c.Put("c", make([]byte, 40)) // 120 > 100: evict b
	if _, ok := c.Get("b"); ok {
		t.Error("LRU victim b survived")
	}
	if _, ok := c.Get("a"); !ok {
		t.Error("recently used a evicted")
	}
	if c.Bytes() != 80 {
		t.Errorf("cache holds %d bytes after eviction", c.Bytes())
	}
	if n := reg.Counter("spate_chunk_cache_evictions_total", "").Value(); n != 1 {
		t.Errorf("evictions counter = %d", n)
	}
	hits := reg.Counter("spate_chunk_cache_hits_total", "").Value()
	misses := reg.Counter("spate_chunk_cache_misses_total", "").Value()
	if hits != 2 || misses != 1 {
		t.Errorf("hits=%d misses=%d", hits, misses)
	}
}

func TestCacheOversizeAndReplace(t *testing.T) {
	c := segment.NewCache(50, obs.NewRegistry())
	c.Put("huge", make([]byte, 51)) // larger than the bound: not cached
	if c.Len() != 0 {
		t.Fatal("oversize entry cached")
	}
	c.Put("k", make([]byte, 10))
	c.Put("k", make([]byte, 30)) // replacement adjusts accounting
	if c.Bytes() != 30 || c.Len() != 1 {
		t.Fatalf("after replace: %d bytes / %d entries", c.Bytes(), c.Len())
	}
}

func TestCacheInvalidatePrefix(t *testing.T) {
	c := segment.NewCache(1<<20, obs.NewRegistry())
	c.Put("/spate/data/2016/01/04/x/CDR#0", make([]byte, 10))
	c.Put("/spate/data/2016/01/04/x/CDR#1", make([]byte, 10))
	c.Put("/spate/data/2016/01/04/x/NMS#0", make([]byte, 10))
	if n := c.InvalidatePrefix("/spate/data/2016/01/04/x/CDR#"); n != 2 {
		t.Fatalf("invalidated %d entries, want 2", n)
	}
	if c.Len() != 1 || c.Bytes() != 10 {
		t.Fatalf("after invalidate: %d entries / %d bytes", c.Len(), c.Bytes())
	}
}

func TestCacheDisabled(t *testing.T) {
	c := segment.NewCache(0, obs.NewRegistry())
	c.Put("k", make([]byte, 10))
	if _, ok := c.Get("k"); ok {
		t.Error("disabled cache returned a hit")
	}
}

func TestCacheConcurrent(t *testing.T) {
	c := segment.NewCache(4<<10, obs.NewRegistry())
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", (g*7+i)%32)
				if _, ok := c.Get(key); !ok {
					c.Put(key, make([]byte, 256))
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Bytes() > 4<<10 {
		t.Fatalf("byte bound violated: %d", c.Bytes())
	}
}

func TestCacheStripeSelection(t *testing.T) {
	reg := obs.NewRegistry()
	// The default 64 MiB query cache spreads across the full stripe set;
	// tiny caps collapse to one stripe so strict global LRU still holds.
	if n := segment.NewCache(64<<20, reg).Stripes(); n != 16 {
		t.Errorf("64 MiB cache has %d stripes, want 16", n)
	}
	if n := segment.NewCache(1<<20, reg).Stripes(); n != 1 {
		t.Errorf("1 MiB cache has %d stripes, want 1", n)
	}
	if n := segment.NewCache(100, reg).Stripes(); n != 1 {
		t.Errorf("100 B cache has %d stripes, want 1", n)
	}
	if n := segment.NewCache(0, reg).Stripes(); n != 1 {
		t.Errorf("disabled cache has %d stripes, want 1", n)
	}
	if n := segment.NewStripedCache(8<<20, 64, reg).Stripes(); n != 64 {
		t.Errorf("explicit stripes clamped to %d, want 64", n)
	}
}

// TestStripedCacheConcurrent hammers a genuinely striped cache with
// concurrent Get/Put/InvalidatePrefix and checks the global invariants:
// the byte bound holds, Len agrees with Bytes, and invalidated prefixes
// are gone from every stripe.
func TestStripedCacheConcurrent(t *testing.T) {
	reg := obs.NewRegistry()
	c := segment.NewStripedCache(8<<20, 8, reg)
	if c.Stripes() != 8 {
		t.Fatalf("stripes = %d, want 8", c.Stripes())
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 400; i++ {
				key := fmt.Sprintf("/spate/data/%d/chunk-%d", g%4, i%64)
				if _, ok := c.Get(key); !ok {
					c.Put(key, make([]byte, 512))
				}
				if i%97 == 0 {
					c.InvalidatePrefix(fmt.Sprintf("/spate/data/%d/", g%4))
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Bytes() > 8<<20 {
		t.Fatalf("byte bound violated: %d", c.Bytes())
	}
	if c.Bytes() != int64(c.Len())*512 {
		t.Fatalf("bytes %d disagree with %d entries of 512 B", c.Bytes(), c.Len())
	}
	// A final sweep must clear matching keys from all stripes at once.
	c.InvalidatePrefix("/spate/data/")
	if c.Len() != 0 || c.Bytes() != 0 {
		t.Fatalf("after full invalidate: %d entries / %d bytes", c.Len(), c.Bytes())
	}
	// Per-stripe byte shares: keys landing on one stripe cannot displace
	// another stripe's residents, and an entry larger than its stripe's
	// share is rejected outright.
	c.Put("oversize", make([]byte, 2<<20)) // 2 MiB > 8 MiB / 8 stripes
	if _, ok := c.Get("oversize"); ok {
		t.Error("entry above the per-stripe share was admitted")
	}
}
