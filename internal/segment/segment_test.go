package segment_test

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"testing"
	"time"

	"spate/internal/compress"
	_ "spate/internal/compress/all"
	"spate/internal/segment"
	"spate/internal/telco"
)

func codec(t testing.TB, name string) compress.Codec {
	t.Helper()
	c, err := compress.Lookup(name)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// buildRows renders n synthetic wire lines, one per minute starting at
// base, cycling cell ids through nCells.
func buildRows(n, nCells int, base time.Time) (lines [][]byte, metas []segment.RowMeta) {
	for i := 0; i < n; i++ {
		ts := base.Add(time.Duration(i) * time.Minute)
		cell := int64(i % nCells)
		lines = append(lines, []byte(fmt.Sprintf("%s|%d|row-%d|%d\n", ts.Format(telco.TimeLayout), cell, i, i*i)))
		metas = append(metas, segment.RowMeta{TS: ts.UnixNano(), HasTS: true, Cell: cell, HasCell: true})
	}
	return lines, metas
}

func encode(t *testing.T, c compress.Codec, chunkSize int, lines [][]byte, metas []segment.RowMeta) []byte {
	t.Helper()
	w := segment.NewWriter(c, chunkSize)
	for i, l := range lines {
		if err := w.AppendRow(l, metas[i]); err != nil {
			t.Fatal(err)
		}
	}
	data, st, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	var want int64
	for _, l := range lines {
		want += int64(len(l))
	}
	if st.RawBytes != want {
		t.Fatalf("stats raw bytes = %d, want %d", st.RawBytes, want)
	}
	return data
}

func TestRoundTripAllCodecs(t *testing.T) {
	base := time.Date(2016, 1, 4, 9, 0, 0, 0, time.UTC)
	lines, metas := buildRows(500, 20, base)
	var wire bytes.Buffer
	for _, l := range lines {
		wire.Write(l)
	}
	for _, name := range compress.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			c := codec(t, name)
			data := encode(t, c, 2<<10, lines, metas)
			r, err := segment.Open(bytes.NewReader(data), int64(len(data)), c)
			if err != nil {
				t.Fatal(err)
			}
			if r.NumChunks() < 2 {
				t.Fatalf("expected multiple chunks, got %d", r.NumChunks())
			}
			var got bytes.Buffer
			var rows int64
			for i, ch := range r.Chunks() {
				text, err := r.ChunkData(i)
				if err != nil {
					t.Fatal(err)
				}
				got.Write(text)
				rows += ch.Rows
			}
			if !bytes.Equal(got.Bytes(), wire.Bytes()) {
				t.Fatal("concatenated chunks differ from the table wire text")
			}
			if rows != 500 {
				t.Fatalf("footer rows = %d, want 500", rows)
			}
		})
	}
}

func TestWindowPruning(t *testing.T) {
	base := time.Date(2016, 1, 4, 0, 0, 0, 0, time.UTC)
	lines, metas := buildRows(600, 10, base) // 10 hours of minutes
	c := codec(t, "gzip")
	data := encode(t, c, 4<<10, lines, metas)
	r, err := segment.Open(bytes.NewReader(data), int64(len(data)), c)
	if err != nil {
		t.Fatal(err)
	}
	// A 30-minute window deep inside: most chunks must be prunable, and
	// the surviving chunks must cover every matching row.
	w := telco.NewTimeRange(base.Add(5*time.Hour), base.Add(5*time.Hour+30*time.Minute))
	kept, pruned := 0, 0
	var got bytes.Buffer
	for i, ch := range r.Chunks() {
		if !ch.OverlapsWindow(w) {
			pruned++
			continue
		}
		kept++
		text, err := r.ChunkData(i)
		if err != nil {
			t.Fatal(err)
		}
		got.Write(text)
	}
	if pruned == 0 {
		t.Fatalf("no chunks pruned for a 30-minute window over 10 hours (%d chunks)", r.NumChunks())
	}
	// Every line whose timestamp falls in the window must appear.
	for i, l := range lines {
		ts := base.Add(time.Duration(i) * time.Minute)
		if w.Contains(ts) && !bytes.Contains(got.Bytes(), l) {
			t.Fatalf("window row %d missing after pruning (kept=%d pruned=%d)", i, kept, pruned)
		}
	}
}

func TestCellSketchPruning(t *testing.T) {
	base := time.Date(2016, 1, 4, 0, 0, 0, 0, time.UTC)
	// Two runs of rows in disjoint cell populations.
	linesA, metasA := buildRows(200, 5, base)
	var linesB [][]byte
	var metasB []segment.RowMeta
	for i := 0; i < 200; i++ {
		ts := base.Add(time.Duration(200+i) * time.Minute)
		cell := int64(1000 + i%5)
		linesB = append(linesB, []byte(fmt.Sprintf("%s|%d|b\n", ts.Format(telco.TimeLayout), cell)))
		metasB = append(metasB, segment.RowMeta{TS: ts.UnixNano(), HasTS: true, Cell: cell, HasCell: true})
	}
	c := codec(t, "snappy")
	data := encode(t, c, 2<<10, append(linesA, linesB...), append(metasA, metasB...))
	r, err := segment.Open(bytes.NewReader(data), int64(len(data)), c)
	if err != nil {
		t.Fatal(err)
	}
	// Probing for cells only population B holds must prune at least the
	// leading chunks (pure population A), and never prune a chunk that
	// actually holds a probed cell.
	probe := []int64{1000, 1001}
	pruned := 0
	for i, ch := range r.Chunks() {
		may := ch.MayContainAnyCell(probe)
		text, err := r.ChunkData(i)
		if err != nil {
			t.Fatal(err)
		}
		holds := bytes.Contains(text, []byte("|1000|")) || bytes.Contains(text, []byte("|1001|"))
		if holds && !may {
			t.Fatalf("chunk %d holds a probed cell but the sketch pruned it", i)
		}
		if !may {
			pruned++
		}
	}
	if pruned == 0 {
		t.Fatal("sketch pruned nothing for disjoint cell populations")
	}
	// No candidates = no pruning.
	if !r.Chunks()[0].MayContainAnyCell(nil) {
		t.Fatal("empty candidate list must disable pruning")
	}
}

func TestRowsWithoutMetadataDefeatPruning(t *testing.T) {
	c := codec(t, "gzip")
	w := segment.NewWriter(c, 1<<10)
	if err := w.AppendRow([]byte("no-ts-no-cell\n"), segment.RowMeta{}); err != nil {
		t.Fatal(err)
	}
	data, _, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	r, err := segment.Open(bytes.NewReader(data), int64(len(data)), c)
	if err != nil {
		t.Fatal(err)
	}
	ch := r.Chunks()[0]
	anyWindow := telco.NewTimeRange(time.Unix(0, 0), time.Unix(1, 0))
	if !ch.OverlapsWindow(anyWindow) {
		t.Error("chunk with timestamp-less rows was window-pruned")
	}
	if !ch.MayContainCell(42) {
		t.Error("chunk with cell-less rows was sketch-pruned")
	}
}

func TestIsSegmentSniffsLegacyBlobs(t *testing.T) {
	c := codec(t, "gzip")
	legacy := c.Compress(nil, []byte("plain whole-blob leaf data, compressed directly\n"))
	if segment.IsSegment(bytes.NewReader(legacy), int64(len(legacy))) {
		t.Error("legacy codec blob sniffed as a segment")
	}
	lines, metas := buildRows(10, 2, time.Date(2016, 1, 4, 0, 0, 0, 0, time.UTC))
	data := encode(t, c, 1<<10, lines, metas)
	if !segment.IsSegment(bytes.NewReader(data), int64(len(data))) {
		t.Error("segment not recognized by its magic")
	}
	if _, err := segment.Open(bytes.NewReader(legacy), int64(len(legacy)), c); err == nil {
		t.Error("Open accepted a legacy blob")
	}
}

func TestCorruptionDetected(t *testing.T) {
	c := codec(t, "zstd")
	lines, metas := buildRows(300, 8, time.Date(2016, 1, 4, 0, 0, 0, 0, time.UTC))
	data := encode(t, c, 2<<10, lines, metas)

	// Flip a payload byte: the chunk CRC must catch it.
	bad := append([]byte(nil), data...)
	r, err := segment.Open(bytes.NewReader(bad), int64(len(bad)), c)
	if err != nil {
		t.Fatal(err)
	}
	bad[r.Chunks()[0].Off] ^= 0xFF
	if _, err := r.ChunkData(0); err == nil {
		t.Error("corrupted chunk payload decoded without error")
	}

	// Truncate the tail: Open must fail, not misparse.
	for _, cut := range []int{1, 4, 8, 20} {
		if _, err := segment.Open(bytes.NewReader(data[:len(data)-cut]), int64(len(data)-cut), c); err == nil {
			t.Errorf("cut=%d: truncated segment opened", cut)
		}
	}

	// Garbage footer length.
	bad2 := append([]byte(nil), data...)
	bad2[len(bad2)-8] = 0xFF
	bad2[len(bad2)-7] = 0xFF
	bad2[len(bad2)-6] = 0xFF
	if _, err := segment.Open(bytes.NewReader(bad2), int64(len(bad2)), c); err == nil {
		t.Error("garbage footer length accepted")
	}
}

func TestEmptySegment(t *testing.T) {
	c := codec(t, "gzip")
	w := segment.NewWriter(c, 1<<10)
	data, st, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if st.Chunks != 0 {
		t.Fatalf("empty segment has %d chunks", st.Chunks)
	}
	r, err := segment.Open(bytes.NewReader(data), int64(len(data)), c)
	if err != nil {
		t.Fatal(err)
	}
	if r.NumChunks() != 0 {
		t.Fatalf("empty segment read back %d chunks", r.NumChunks())
	}
}

func TestAdaptiveSketchSizing(t *testing.T) {
	c := codec(t, "gzip")
	base := time.Date(2016, 1, 4, 0, 0, 0, 0, time.UTC)

	// Two distinct cells need only the minimum 8-byte bloom.
	lines, metas := buildRows(20, 2, base)
	data := encode(t, c, 1<<20, lines, metas)
	r, err := segment.Open(bytes.NewReader(data), int64(len(data)), c)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(r.Chunks()[0].Sketch); got != 8 {
		t.Errorf("2-cell chunk sketch = %d bytes, want 8", got)
	}
	for i := int64(0); i < 2; i++ {
		if !r.Chunks()[0].MayContainCell(i) {
			t.Errorf("small sketch lost cell %d", i)
		}
	}

	// A hundred distinct cells saturate to the 128-byte cap.
	lines, metas = buildRows(300, 100, base)
	data = encode(t, c, 1<<20, lines, metas)
	if r, err = segment.Open(bytes.NewReader(data), int64(len(data)), c); err != nil {
		t.Fatal(err)
	}
	if got := len(r.Chunks()[0].Sketch); got != 128 {
		t.Errorf("100-cell chunk sketch = %d bytes, want the 128-byte cap", got)
	}
}

// TestSketchMergeUnion drives the compactor's merge path across sketches of
// different sizes: the union must keep every cell of both chunks (tiling
// the smaller bloom up) while still pruning absent cells.
func TestSketchMergeUnion(t *testing.T) {
	c := codec(t, "gzip")
	base := time.Date(2016, 1, 4, 0, 0, 0, 0, time.UTC)
	open := func(data []byte) *segment.Reader {
		t.Helper()
		r, err := segment.Open(bytes.NewReader(data), int64(len(data)), c)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}

	linesA, metasA := buildRows(20, 4, base) // cells 0..3: 8-byte sketch
	var linesB [][]byte
	var metasB []segment.RowMeta
	for i := 0; i < 200; i++ { // cells 1000..1099: capped 128-byte sketch
		ts := base.Add(time.Duration(20+i) * time.Minute)
		cell := int64(1000 + i%100)
		linesB = append(linesB, []byte(fmt.Sprintf("%s|%d|b\n", ts.Format(telco.TimeLayout), cell)))
		metasB = append(metasB, segment.RowMeta{TS: ts.UnixNano(), HasTS: true, Cell: cell, HasCell: true})
	}
	rA := open(encode(t, c, 1<<20, linesA, metasA))
	rB := open(encode(t, c, 1<<20, linesB, metasB))
	if la, lb := len(rA.Chunks()[0].Sketch), len(rB.Chunks()[0].Sketch); la >= lb {
		t.Fatalf("rig broken: sketches %d and %d bytes, want small < large", la, lb)
	}

	w := segment.NewWriter(c, 1<<20)
	for _, r := range []*segment.Reader{rA, rB} {
		text, err := r.ChunkData(0)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.AppendChunk(text, r.Chunks()[0]); err != nil {
			t.Fatal(err)
		}
	}
	data, st, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if st.Chunks != 1 {
		t.Fatalf("merge produced %d chunks", st.Chunks)
	}
	ch := open(data).Chunks()[0]
	if len(ch.Sketch) != 128 {
		t.Errorf("merged sketch = %d bytes, want the larger size 128", len(ch.Sketch))
	}
	for i := int64(0); i < 4; i++ {
		if !ch.MayContainCell(i) {
			t.Errorf("merge lost small-sketch cell %d", i)
		}
	}
	for i := int64(1000); i < 1100; i++ {
		if !ch.MayContainCell(i) {
			t.Errorf("merge lost large-sketch cell %d", i)
		}
	}
	pruned := 0
	for i := int64(5000); i < 5050; i++ {
		if !ch.MayContainCell(i) {
			pruned++
		}
	}
	if pruned == 0 {
		t.Error("merged sketch prunes nothing: union is saturated")
	}
}

// TestVersion1Compat hand-builds a version-1 segment — fixed 128-byte
// sketch, no length prefix — and proves today's reader still serves it:
// stores written before the adaptive-sketch format must survive upgrades.
func TestVersion1Compat(t *testing.T) {
	c := codec(t, "gzip")
	text := []byte("2016-01-04 00:00:00|7|legacy row one\n2016-01-04 00:01:00|9|legacy row two\n")
	cells := []int64{7, 9}

	var payload bytes.Buffer
	sw := compress.NewStreamWriterSize(c, &payload, 1<<20)
	if _, err := sw.Write(text); err != nil {
		t.Fatal(err)
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}

	// v1 bloom: k=3 splitmix64 probes over 1024 bits (the wire contract
	// this test pins down, hence the local reimplementation).
	mix := func(x uint64) uint64 {
		x ^= x >> 30
		x *= 0xbf58476d1ce4e5b9
		x ^= x >> 27
		x *= 0x94d049bb133111eb
		x ^= x >> 31
		return x
	}
	var sketch [128]byte
	for _, id := range cells {
		h := uint64(id)
		for i := 0; i < 3; i++ {
			h = mix(h + uint64(i)*0x9e3779b97f4a7c15)
			bit := h % (128 * 8)
			sketch[bit/8] |= 1 << (bit % 8)
		}
	}

	var f bytes.Buffer
	f.WriteString("SPSG")
	f.WriteByte(1) // version 1
	f.Write(payload.Bytes())
	var foot bytes.Buffer
	var tmp [binary.MaxVarintLen64]byte
	put := func(v uint64) { foot.Write(tmp[:binary.PutUvarint(tmp[:], v)]) }
	put(1)                     // chunk count
	put(5)                     // off
	put(uint64(payload.Len())) // clen
	put(uint64(len(text)))     // ulen
	put(2)                     // rows
	binary.LittleEndian.PutUint32(tmp[:4], crc32.ChecksumIEEE(payload.Bytes()))
	foot.Write(tmp[:4])
	foot.WriteByte(0) // flags
	ts := time.Date(2016, 1, 4, 0, 0, 0, 0, time.UTC).UnixNano()
	binary.LittleEndian.PutUint64(tmp[:8], uint64(ts))
	foot.Write(tmp[:8])
	binary.LittleEndian.PutUint64(tmp[:8], uint64(ts+60e9))
	foot.Write(tmp[:8])
	foot.Write(sketch[:]) // fixed-size, no length prefix
	f.Write(foot.Bytes())
	binary.LittleEndian.PutUint32(tmp[:4], uint32(foot.Len()))
	f.Write(tmp[:4])
	f.WriteString("GSPS")

	r, err := segment.Open(bytes.NewReader(f.Bytes()), int64(f.Len()), c)
	if err != nil {
		t.Fatalf("v1 segment rejected: %v", err)
	}
	got, err := r.ChunkData(0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, text) {
		t.Fatal("v1 chunk text mismatch")
	}
	ch := r.Chunks()[0]
	if len(ch.Sketch) != 128 {
		t.Fatalf("v1 sketch read as %d bytes", len(ch.Sketch))
	}
	if !ch.MayContainCell(7) || !ch.MayContainCell(9) {
		t.Error("v1 sketch lost its cells")
	}
	if ch.MayContainCell(12345) {
		t.Error("v1 sketch does not prune an absent cell")
	}
}
