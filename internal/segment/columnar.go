package segment

import (
	"bytes"
	"fmt"
	"hash/crc32"
	"math"
	"strconv"

	"spate/internal/compress"
)

// ColumnWriter renders a v3 column-major segment: rows arrive as escaped
// wire fields, accumulate per column, and each chunk flush packs every
// column with the encoding its entropy selects (dict+RLE, delta, or raw
// join), then block-compresses the packed concatenation once so the codec
// keeps one shared context across columns. Like Writer it is not safe for
// concurrent use; ingest runs one writer per table worker.
type ColumnWriter struct {
	codec     compress.Codec
	chunkSize int
	ncols     int

	out     *bytes.Buffer
	cols    [][]string // accumulated escaped fields, per column
	curSize int        // wire-text bytes the accumulated rows reconstruct to

	chunks []Chunk

	// current chunk stats (same bookkeeping as Writer)
	rows  int64
	minTS int64
	maxTS int64
	flags byte
	cells map[int64]struct{}

	stats       []ColumnStat
	statsChunks int
	finished    bool
}

// ColumnStat summarizes how one column encoded across a segment's chunks —
// the observability feed for codec-selection stats.
type ColumnStat struct {
	// Plain, Dict and Delta count the chunks encoded with each codec.
	Plain, Dict, Delta int
	// EntropyBits is the mean per-chunk Shannon entropy of the column's
	// value distribution (0 when every chunk exceeded the dictionary
	// cardinality cap and skipped the measurement).
	EntropyBits float64
}

// NewColumnWriter returns a v3 writer for tables of ncols columns. A
// non-positive chunkSize selects DefaultChunkSize.
func NewColumnWriter(codec compress.Codec, chunkSize, ncols int) *ColumnWriter {
	if chunkSize <= 0 {
		chunkSize = DefaultChunkSize
	}
	w := &ColumnWriter{
		codec:     codec,
		chunkSize: chunkSize,
		ncols:     ncols,
		out:       bufPool.Get().(*bytes.Buffer),
		cols:      make([][]string, ncols),
		cells:     make(map[int64]struct{}),
		stats:     make([]ColumnStat, ncols),
	}
	w.out.Reset()
	w.out.Write(magic[:])
	w.out.WriteByte(Version)
	w.resetChunkStats()
	return w
}

func (w *ColumnWriter) resetChunkStats() {
	w.rows = 0
	w.minTS = math.MaxInt64
	w.maxTS = math.MinInt64
	w.flags = 0
	clear(w.cells)
	for i := range w.cols {
		w.cols[i] = w.cols[i][:0]
	}
	w.curSize = 0
}

// AppendRowFields adds one record's escaped wire fields (one per column,
// exactly what telco.Record.AppendFields renders) with its pruning
// metadata. Field order must match the schema; rows are stored in append
// order, so the segment reconstructs the table's wire form exactly.
func (w *ColumnWriter) AppendRowFields(fields []string, m RowMeta) error {
	if w.finished {
		return fmt.Errorf("segment: append after Finish")
	}
	if len(fields) != w.ncols {
		return fmt.Errorf("segment: row has %d fields, writer wants %d", len(fields), w.ncols)
	}
	for i, f := range fields {
		w.cols[i] = append(w.cols[i], f)
		w.curSize += len(f)
	}
	w.curSize += w.ncols // ncols-1 separators + newline
	w.rows++
	if m.HasTS {
		if m.TS < w.minTS {
			w.minTS = m.TS
		}
		if m.TS > w.maxTS {
			w.maxTS = m.TS
		}
	} else {
		w.flags |= flagNoTS
	}
	if m.HasCell {
		w.cells[m.Cell] = struct{}{}
	} else {
		w.flags |= flagNoCell
	}
	if w.curSize >= w.chunkSize {
		return w.flushChunk()
	}
	return nil
}

func (w *ColumnWriter) flushChunk() error {
	if w.rows == 0 {
		return nil
	}
	off := int64(w.out.Len())
	metas := make([]ColMeta, w.ncols)
	var packed []byte
	anyPacked := false
	for i, vals := range w.cols {
		choice := compress.ChooseColumn(vals)
		streamOff := int64(len(packed))
		var err error
		packed, err = compress.EncodeColumn(packed, choice.Tag, vals)
		if err != nil {
			return fmt.Errorf("segment: encode column %d: %w", i, err)
		}
		m := &metas[i]
		m.Tag = choice.Tag
		m.Off = streamOff
		m.Len = int64(len(packed)) - streamOff
		m.HasZone, m.Min, m.Max = intZone(vals)
		if choice.Tag != compress.ColPlain {
			anyPacked = true
		}
		w.stats[i].EntropyBits += choice.EntropyBits
	}
	// One block-codec pass over the packed concatenation: column offsets
	// index the inflated block, so selective reads inflate once and parse
	// only the streams they need.
	blob := w.codec.Compress(nil, packed)
	if anyPacked {
		// Dict/RLE and delta pre-packing can destroy the byte-level
		// redundancy the block codec feeds on (near-duplicate rows
		// compress far better as raw text than as index streams), so
		// compress an all-plain packing too and keep the smaller chunk.
		plain := make([]byte, 0, len(packed))
		plainMetas := make([]ColMeta, w.ncols)
		for i, vals := range w.cols {
			streamOff := int64(len(plain))
			plain, _ = compress.EncodeColumn(plain, compress.ColPlain, vals)
			m := &plainMetas[i]
			m.Tag = compress.ColPlain
			m.Off = streamOff
			m.Len = int64(len(plain)) - streamOff
			m.HasZone, m.Min, m.Max = metas[i].HasZone, metas[i].Min, metas[i].Max
		}
		if pb := w.codec.Compress(nil, plain); len(pb) < len(blob) {
			blob, metas = pb, plainMetas
		}
	}
	// Per-chunk layout choice: when the row-major wire text compresses
	// smaller than any column packing — typical under a dictionary trained
	// on row-major samples — store the text and keep only the directory's
	// zones. Readers still serve per-column requests by splitting rows.
	if rb := w.codec.Compress(nil, w.rowText()); len(rb) < len(blob) {
		blob = rb
		w.flags |= flagRowText
		for i := range metas {
			m := &metas[i]
			m.Tag = compress.ColPlain
			m.Off, m.Len = 0, 0
		}
	}
	for i, m := range metas {
		st := &w.stats[i]
		switch m.Tag {
		case compress.ColDict:
			st.Dict++
		case compress.ColDelta:
			st.Delta++
		default:
			st.Plain++
		}
	}
	w.statsChunks++
	w.out.Write(blob)
	payload := w.out.Bytes()[off:]
	var sk []byte
	if w.flags&flagNoCell == 0 && len(w.cells) > 0 {
		sk = make([]byte, sketchSizeFor(len(w.cells)))
		for id := range w.cells {
			sketchSet(sk, id)
		}
	}
	w.chunks = append(w.chunks, Chunk{
		Off:    off,
		Len:    int64(len(payload)),
		ULen:   int64(w.curSize),
		Rows:   w.rows,
		CRC:    crc32.ChecksumIEEE(payload),
		Flags:  w.flags,
		MinTS:  w.minTS,
		MaxTS:  w.maxTS,
		Sketch: sk,
		Cols:   metas,
	})
	w.resetChunkStats()
	return nil
}

// rowText reassembles the accumulated rows' exact wire text (fields
// joined by '|', rows by '\n') — the row-major layout candidate.
func (w *ColumnWriter) rowText() []byte {
	text := make([]byte, 0, w.curSize)
	for r := int64(0); r < w.rows; r++ {
		for i := range w.cols {
			if i > 0 {
				text = append(text, '|')
			}
			text = append(text, w.cols[i][r]...)
		}
		text = append(text, '\n')
	}
	return text
}

// intZone computes a column's integer zone map: present only when every
// field is a canonical base-10 int64 (so the zone's bounds compare exactly
// like the decoded values, and zone presence certifies the column has no
// blank fields in the chunk).
func intZone(vals []string) (bool, int64, int64) {
	if len(vals) == 0 {
		return false, 0, 0
	}
	min, max := int64(math.MaxInt64), int64(math.MinInt64)
	for _, v := range vals {
		x, err := strconv.ParseInt(v, 10, 64)
		if err != nil || strconv.FormatInt(x, 10) != v {
			return false, 0, 0
		}
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return true, min, max
}

// Finish flushes the last chunk, appends the v3 footer and returns the
// rendered segment.
func (w *ColumnWriter) Finish() ([]byte, Stats, error) {
	if w.finished {
		return nil, Stats{}, fmt.Errorf("segment: double Finish")
	}
	w.finished = true
	if err := w.flushChunk(); err != nil {
		return nil, Stats{}, err
	}
	st := writeFooter(w.out, w.chunks, w.codec)
	if w.statsChunks > 0 {
		for i := range w.stats {
			w.stats[i].EntropyBits /= float64(w.statsChunks)
		}
	}
	data := append([]byte(nil), w.out.Bytes()...)
	bufPool.Put(w.out)
	w.out = nil
	return data, st, nil
}

// ColumnStats reports the per-column codec choices and entropy after
// Finish, in schema order.
func (w *ColumnWriter) ColumnStats() []ColumnStat { return w.stats }
