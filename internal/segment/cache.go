package segment

import (
	"container/list"
	"strings"
	"sync"

	"spate/internal/obs"
)

// Cache is a bytes-bounded LRU over inflated chunk wire text, shared by
// every query path that touches leaf data. Bounding by bytes (not entries)
// keeps the working set predictable no matter how chunk sizes are tuned.
// All methods are safe for concurrent use.
type Cache struct {
	mu    sync.Mutex
	cap   int64
	used  int64
	ll    *list.List // front = most recently used
	items map[string]*list.Element

	hits      *obs.Counter
	misses    *obs.Counter
	evictions *obs.Counter
}

type cacheEntry struct {
	key  string
	data []byte
}

// NewCache returns a cache bounded at maxBytes, reporting hit/miss/
// eviction counters and a live byte gauge into reg (obs.Default when nil).
// A non-positive bound disables caching: Get always misses, Put discards.
func NewCache(maxBytes int64, reg *obs.Registry) *Cache {
	if reg == nil {
		reg = obs.Default
	}
	c := &Cache{
		cap:       maxBytes,
		ll:        list.New(),
		items:     make(map[string]*list.Element),
		hits:      reg.Counter("spate_chunk_cache_hits_total", "Chunk reads served from the leaf chunk cache."),
		misses:    reg.Counter("spate_chunk_cache_misses_total", "Chunk reads that fetched and inflated from the DFS."),
		evictions: reg.Counter("spate_chunk_cache_evictions_total", "Chunks evicted to respect the cache byte bound."),
	}
	reg.GaugeFunc("spate_chunk_cache_bytes", "Inflated bytes currently held by the leaf chunk cache.",
		func() float64 { return float64(c.Bytes()) })
	return c
}

// Get returns the cached chunk for key, marking it most recently used.
// The returned slice is shared — callers must not mutate it.
func (c *Cache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses.Inc()
		return nil, false
	}
	c.hits.Inc()
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).data, true
}

// Put stores data under key, evicting least-recently-used chunks until the
// byte bound holds. Entries larger than the whole bound are not cached.
func (c *Cache) Put(key string, data []byte) {
	if c.cap <= 0 || int64(len(data)) > c.cap {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		ent := el.Value.(*cacheEntry)
		c.used += int64(len(data)) - int64(len(ent.data))
		ent.data = data
		c.ll.MoveToFront(el)
	} else {
		c.items[key] = c.ll.PushFront(&cacheEntry{key: key, data: data})
		c.used += int64(len(data))
	}
	for c.used > c.cap {
		oldest := c.ll.Back()
		if oldest == nil {
			break
		}
		c.removeLocked(oldest)
		c.evictions.Inc()
	}
}

func (c *Cache) removeLocked(el *list.Element) {
	ent := el.Value.(*cacheEntry)
	c.ll.Remove(el)
	delete(c.items, ent.key)
	c.used -= int64(len(ent.data))
}

// InvalidatePrefix drops every entry whose key starts with prefix — decay
// deletes leaf files, and their inflated chunks must not linger in memory.
// It returns the number of entries dropped.
func (c *Cache) InvalidatePrefix(prefix string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	dropped := 0
	for el := c.ll.Front(); el != nil; {
		next := el.Next()
		if strings.HasPrefix(el.Value.(*cacheEntry).key, prefix) {
			c.removeLocked(el)
			dropped++
		}
		el = next
	}
	return dropped
}

// Bytes returns the inflated bytes currently held.
func (c *Cache) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.used
}

// Len returns the number of cached chunks.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
