package segment

import (
	"container/list"
	"strings"
	"sync"

	"spate/internal/obs"
)

// Cache is a bytes-bounded LRU over inflated chunk wire text, shared by
// every query path that touches leaf data. Bounding by bytes (not entries)
// keeps the working set predictable no matter how chunk sizes are tuned.
//
// Internally the cache is striped: keys hash to one of N independent
// shards, each with its own mutex, LRU list and share of the byte budget,
// so parallel scan workers probing different chunks never serialize on a
// single lock. Small budgets collapse to one stripe (a global LRU —
// exactly the historical behaviour); the 64 MiB default runs 16 stripes.
// All methods are safe for concurrent use.
type Cache struct {
	stripes []*cacheStripe

	hits      *obs.Counter
	misses    *obs.Counter
	evictions *obs.Counter
}

type cacheStripe struct {
	mu    sync.Mutex
	cap   int64
	used  int64
	ll    *list.List // front = most recently used
	items map[string]*list.Element
}

type cacheEntry struct {
	key  string
	data []byte
}

// Stripe sizing: each stripe manages an independent slice of the byte
// budget, so stripes only help once the budget is large enough that a
// per-stripe share still holds many chunks. Budgets below 2·minStripeBytes
// run a single global LRU, preserving exact historical eviction order for
// small configurations.
const (
	maxStripes     = 16
	minStripeBytes = 1 << 20
)

func stripesFor(maxBytes int64) int {
	n := int(maxBytes / minStripeBytes)
	if n > maxStripes {
		n = maxStripes
	}
	if n < 2 {
		return 1
	}
	return n
}

// NewCache returns a cache bounded at maxBytes, reporting hit/miss/
// eviction counters and a live byte gauge into reg (obs.Default when nil).
// A non-positive bound disables caching: Get always misses, Put discards.
func NewCache(maxBytes int64, reg *obs.Registry) *Cache {
	return NewStripedCache(maxBytes, stripesFor(maxBytes), reg)
}

// NewStripedCache is NewCache with an explicit stripe count (clamped to at
// least 1); the byte budget divides evenly across stripes, with the
// remainder on stripe 0. Exposed so tests can force contention onto a
// known stripe layout.
func NewStripedCache(maxBytes int64, stripes int, reg *obs.Registry) *Cache {
	if reg == nil {
		reg = obs.Default
	}
	if stripes < 1 {
		stripes = 1
	}
	if maxBytes <= 0 {
		stripes = 1 // disabled: one empty stripe keeps the methods trivial
	}
	c := &Cache{
		stripes:   make([]*cacheStripe, stripes),
		hits:      reg.Counter("spate_chunk_cache_hits_total", "Chunk reads served from the leaf chunk cache."),
		misses:    reg.Counter("spate_chunk_cache_misses_total", "Chunk reads that fetched and inflated from the DFS."),
		evictions: reg.Counter("spate_chunk_cache_evictions_total", "Chunks evicted to respect the cache byte bound."),
	}
	share := maxBytes / int64(stripes)
	rem := maxBytes - share*int64(stripes)
	for i := range c.stripes {
		cp := share
		if i == 0 {
			cp += rem
		}
		c.stripes[i] = &cacheStripe{
			cap:   cp,
			ll:    list.New(),
			items: make(map[string]*list.Element),
		}
	}
	reg.GaugeFunc("spate_chunk_cache_bytes", "Inflated bytes currently held by the leaf chunk cache.",
		func() float64 { return float64(c.Bytes()) })
	return c
}

// stripe maps key to its shard (FNV-1a).
func (c *Cache) stripe(key string) *cacheStripe {
	if len(c.stripes) == 1 {
		return c.stripes[0]
	}
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return c.stripes[h%uint32(len(c.stripes))]
}

// Get returns the cached chunk for key, marking it most recently used.
// The returned slice is shared — callers must not mutate it.
func (c *Cache) Get(key string) ([]byte, bool) {
	s := c.stripe(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.items[key]
	if !ok {
		c.misses.Inc()
		return nil, false
	}
	c.hits.Inc()
	s.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).data, true
}

// Put stores data under key, evicting that stripe's least-recently-used
// chunks until its share of the byte bound holds. Entries larger than the
// stripe's share are not cached.
func (c *Cache) Put(key string, data []byte) {
	s := c.stripe(key)
	if s.cap <= 0 || int64(len(data)) > s.cap {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.items[key]; ok {
		ent := el.Value.(*cacheEntry)
		s.used += int64(len(data)) - int64(len(ent.data))
		ent.data = data
		s.ll.MoveToFront(el)
	} else {
		s.items[key] = s.ll.PushFront(&cacheEntry{key: key, data: data})
		s.used += int64(len(data))
	}
	for s.used > s.cap {
		oldest := s.ll.Back()
		if oldest == nil {
			break
		}
		s.removeLocked(oldest)
		c.evictions.Inc()
	}
}

func (s *cacheStripe) removeLocked(el *list.Element) {
	ent := el.Value.(*cacheEntry)
	s.ll.Remove(el)
	delete(s.items, ent.key)
	s.used -= int64(len(ent.data))
}

// InvalidatePrefix drops every entry whose key starts with prefix — decay
// deletes leaf files, and their inflated chunks must not linger in memory.
// All stripes are swept (a prefix's keys hash everywhere). It returns the
// number of entries dropped.
func (c *Cache) InvalidatePrefix(prefix string) int {
	dropped := 0
	for _, s := range c.stripes {
		s.mu.Lock()
		for el := s.ll.Front(); el != nil; {
			next := el.Next()
			if strings.HasPrefix(el.Value.(*cacheEntry).key, prefix) {
				s.removeLocked(el)
				dropped++
			}
			el = next
		}
		s.mu.Unlock()
	}
	return dropped
}

// Bytes returns the inflated bytes currently held across all stripes.
func (c *Cache) Bytes() int64 {
	var total int64
	for _, s := range c.stripes {
		s.mu.Lock()
		total += s.used
		s.mu.Unlock()
	}
	return total
}

// Len returns the number of cached chunks across all stripes.
func (c *Cache) Len() int {
	n := 0
	for _, s := range c.stripes {
		s.mu.Lock()
		n += s.ll.Len()
		s.mu.Unlock()
	}
	return n
}

// Stripes reports the stripe count (observability and tests).
func (c *Cache) Stripes() int { return len(c.stripes) }
