package segment_test

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"strconv"
	"testing"

	"spate/internal/compress"
	"spate/internal/segment"
)

// identCodec is an identity codec with a length-prefixed frame: packed
// column streams keep their exact sizes, so the chunk-layout competition
// is decided purely by the encodings (dict/delta beat plain beat row
// text), making codec-choice assertions deterministic.
type identCodec struct{}

func (identCodec) Name() string { return "ident-test" }

func (identCodec) Compress(dst, src []byte) []byte {
	var tmp [binary.MaxVarintLen64]byte
	dst = append(dst, tmp[:binary.PutUvarint(tmp[:], uint64(len(src)))]...)
	return append(dst, src...)
}

func (identCodec) Decompress(dst, src []byte) ([]byte, error) {
	n, k := binary.Uvarint(src)
	if k <= 0 || uint64(len(src)-k) < n {
		return nil, compress.Corruptf("ident-test: truncated")
	}
	return append(dst, src[k:k+int(n)]...), nil
}

// favorRowsCodec is identCodec except that payloads without a '|' byte
// are padded. Row-major wire text always contains '|' (every test table
// has ≥2 columns) while all-plain packed streams never do (escaped fields
// joined by '\n'), so the row-text candidate deterministically wins the
// per-chunk size competition — the fallback path under test.
type favorRowsCodec struct{ identCodec }

func (favorRowsCodec) Name() string { return "favor-rows-test" }

func (favorRowsCodec) Compress(dst, src []byte) []byte {
	dst = identCodec{}.Compress(dst, src)
	if !bytes.ContainsRune(src, '|') {
		dst = append(dst, make([]byte, 64)...)
	}
	return dst
}

// buildColumnar renders rows of (monotone int ts, 3-value cycling type,
// unique string, squared int) through a ColumnWriter, returning the
// segment and the exact wire text it must reconstruct.
func buildColumnar(t *testing.T, c compress.Codec, n, chunkSize int) ([]byte, []byte, *segment.ColumnWriter) {
	t.Helper()
	w := segment.NewColumnWriter(c, chunkSize, 4)
	var wire bytes.Buffer
	base := int64(1453476600)
	for i := 0; i < n; i++ {
		fields := []string{
			strconv.FormatInt(base+int64(i)*60, 10),
			[]string{"VOICE", "SMS", "DATA"}[i%3],
			fmt.Sprintf("u-%d", i),
			strconv.Itoa(i * i),
		}
		for k, f := range fields {
			if k > 0 {
				wire.WriteByte('|')
			}
			wire.WriteString(f)
		}
		wire.WriteByte('\n')
		m := segment.RowMeta{TS: (base + int64(i)*60) * 1e9, HasTS: true, Cell: int64(i % 7), HasCell: true}
		if err := w.AppendRowFields(fields, m); err != nil {
			t.Fatal(err)
		}
	}
	data, st, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if st.RawBytes != int64(wire.Len()) {
		t.Fatalf("stats raw bytes = %d, want %d", st.RawBytes, wire.Len())
	}
	return data, wire.Bytes(), w
}

func TestColumnarRoundTrip(t *testing.T) {
	for _, c := range []compress.Codec{codec(t, "gzip"), identCodec{}} {
		t.Run(c.Name(), func(t *testing.T) {
			data, wire, _ := buildColumnar(t, c, 400, 2<<10)
			r, err := segment.Open(bytes.NewReader(data), int64(len(data)), c)
			if err != nil {
				t.Fatal(err)
			}
			if r.Version() != 3 || !r.Columnar() {
				t.Fatalf("version = %d, columnar = %v", r.Version(), r.Columnar())
			}
			if r.NumChunks() < 2 {
				t.Fatalf("expected multiple chunks, got %d", r.NumChunks())
			}
			var got bytes.Buffer
			var rows int64
			for i, ch := range r.Chunks() {
				text, err := r.ChunkData(i)
				if err != nil {
					t.Fatal(err)
				}
				got.Write(text)
				rows += ch.Rows
			}
			if !bytes.Equal(got.Bytes(), wire) {
				t.Fatal("reassembled chunks differ from the table wire text")
			}
			if rows != 400 {
				t.Fatalf("footer rows = %d, want 400", rows)
			}
		})
	}
}

func TestColumnarCodecChoicesAndZones(t *testing.T) {
	// Identity codec: sizes are exact, so dict wins the cycling column,
	// delta wins both monotone-int columns, and the unique column stays
	// plain.
	data, _, w := buildColumnar(t, identCodec{}, 400, 2<<10)
	st := w.ColumnStats()
	if st[0].Delta == 0 || st[3].Delta == 0 {
		t.Errorf("int columns: stats = %+v, want delta chunks", st)
	}
	if st[1].Dict == 0 {
		t.Errorf("cycling column: stats = %+v, want dict chunks", st)
	}
	if st[2].Plain == 0 {
		t.Errorf("unique column: stats = %+v, want plain chunks", st)
	}
	if st[1].EntropyBits <= 0 || st[1].EntropyBits >= 6 {
		t.Errorf("cycling column entropy = %g, want (0,6)", st[1].EntropyBits)
	}

	r, err := segment.Open(bytes.NewReader(data), int64(len(data)), identCodec{})
	if err != nil {
		t.Fatal(err)
	}
	// Integer columns carry exact zone maps; the string columns carry none.
	for i, ch := range r.Chunks() {
		ts := ch.Cols[0]
		if !ts.HasZone || ts.Min >= ts.Max {
			t.Fatalf("chunk %d ts zone = %+v", i, ts)
		}
		if ch.Cols[1].HasZone || ch.Cols[2].HasZone {
			t.Fatalf("chunk %d string columns carry zones", i)
		}
		vals, _, err := r.ChunkColumns(i, []int{0})
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range vals[0] {
			x, _ := strconv.ParseInt(v, 10, 64)
			if x < ts.Min || x > ts.Max {
				t.Fatalf("chunk %d value %s outside zone [%d,%d]", i, v, ts.Min, ts.Max)
			}
		}
	}
}

func TestColumnarSubsetDecode(t *testing.T) {
	data, _, _ := buildColumnar(t, codec(t, "gzip"), 400, 2<<10)
	r, err := segment.Open(bytes.NewReader(data), int64(len(data)), codec(t, "gzip"))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < r.NumChunks(); i++ {
		full, fullBytes, err := r.ChunkColumns(i, nil)
		if err != nil {
			t.Fatal(err)
		}
		// want order is respected, values match the full decode, and the
		// subset materializes strictly fewer wire bytes.
		sub, subBytes, err := r.ChunkColumns(i, []int{3, 1})
		if err != nil {
			t.Fatal(err)
		}
		if len(sub) != 2 {
			t.Fatalf("chunk %d: %d columns, want 2", i, len(sub))
		}
		for row := range sub[0] {
			if sub[0][row] != full[3][row] || sub[1][row] != full[1][row] {
				t.Fatalf("chunk %d row %d: subset decode differs from full decode", i, row)
			}
		}
		if subBytes >= fullBytes {
			t.Fatalf("chunk %d: subset inflated %d bytes, full %d", i, subBytes, fullBytes)
		}
	}
	if _, _, err := r.ChunkColumns(0, []int{4}); err == nil {
		t.Fatal("out-of-range column accepted")
	}
}

func TestColumnarRowTextFallback(t *testing.T) {
	// Every column is high-entropy non-integer text, so packing stays
	// all-plain and the biased codec makes the row-text candidate win.
	c := favorRowsCodec{}
	w := segment.NewColumnWriter(c, 1<<10, 3)
	var wire bytes.Buffer
	for i := 0; i < 300; i++ {
		fields := []string{
			fmt.Sprintf("a%d-%x", i, i*2654435761),
			fmt.Sprintf("b%d-%x", i*7, i*40503),
			fmt.Sprintf("c%d-%x", i*13, i*9176),
		}
		for k, f := range fields {
			if k > 0 {
				wire.WriteByte('|')
			}
			wire.WriteString(f)
		}
		wire.WriteByte('\n')
		if err := w.AppendRowFields(fields, segment.RowMeta{TS: int64(i) * 1e9, HasTS: true, Cell: 1, HasCell: true}); err != nil {
			t.Fatal(err)
		}
	}
	data, _, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	r, err := segment.Open(bytes.NewReader(data), int64(len(data)), c)
	if err != nil {
		t.Fatal(err)
	}
	rowMajor := 0
	var got bytes.Buffer
	for i, ch := range r.Chunks() {
		if ch.RowMajor() {
			rowMajor++
		}
		text, err := r.ChunkData(i)
		if err != nil {
			t.Fatal(err)
		}
		got.Write(text)
		// Per-column reads must serve row-major chunks transparently.
		vals, _, err := r.ChunkColumns(i, []int{2})
		if err != nil {
			t.Fatal(err)
		}
		if int64(len(vals[0])) != ch.Rows {
			t.Fatalf("chunk %d: %d values, footer says %d rows", i, len(vals[0]), ch.Rows)
		}
	}
	if rowMajor == 0 {
		t.Fatal("no chunk fell back to row-major layout")
	}
	if !bytes.Equal(got.Bytes(), wire.Bytes()) {
		t.Fatal("row-text chunks differ from the table wire text")
	}
}
