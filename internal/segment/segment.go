// Package segment implements SPATE's chunked leaf storage format — the
// refactor of the paper's storage layer (§IV) that makes row-fetch cost
// scale with query selectivity instead of snapshot size.
//
// A legacy leaf is a whole-table blob: one compressed run of the table's
// wire text, which a reader must fetch and inflate in full even when the
// query wants one cell in one 30-minute slice. A segment splits the same
// wire text into independently compressed chunks at row boundaries, each
// carrying the statistics a reader needs to skip it — min/max record
// timestamp, a cell-id presence sketch, and a CRC — plus a footer of chunk
// offsets, so a reader seeks straight to the relevant chunks through
// ranged DFS reads and never touches the rest.
//
// On-disk layout (all integers little-endian):
//
//	header   magic "SPSG" | version byte
//	chunks   each chunk payload is a compress stream (length-prefixed
//	         compressed sub-chunks + terminator, see compress.StreamWriter)
//	footer   uvarint chunk count, then per chunk:
//	           off, clen, ulen  uvarint   payload location and inflated size
//	           rows             uvarint   record count
//	           crc              uint32    CRC-32 (IEEE) of the payload bytes
//	           flags            byte      bit0: rows without timestamps
//	                                      bit1: rows without cell ids
//	           minTS, maxTS     int64     unix nanos over timestamped rows
//	           sketch           cell-id bloom filter (k=3):
//	                              v1: 128 bytes, fixed
//	                              v2: uvarint length | length bytes, where
//	                                  length is 0 or a power of two <= 128
//	tail     footer length uint32 | magic "GSPS"
//
// Version 2 sizes each chunk's sketch to its distinct-cell count instead of
// always paying 128 bytes: a chunk covering 30 cells prunes just as well
// with a 64-byte bloom, and for small leaves the fixed sketch dominated the
// whole footer. Power-of-two sizing keeps blooms composable — bit
// positions are h mod the bit count, so a bloom of m bytes tiled out to 2m
// covers both candidate positions of every key, and the compactor can
// union sketches of different sizes when merging chunks without false
// negatives.
//
// Version 3 turns the chunk payload column-major: each column packs its
// escaped wire fields with the encoding its entropy selects (see
// compress.EncodeColumn), the packed streams concatenate, and the block
// codec compresses the concatenation once — so the codec keeps one shared
// context (and any trained dictionary) across all columns. Each chunk's
// footer entry grows a column directory appended after the sketch:
//
//	ncols            uvarint
//	per column:
//	  tag|zone       byte      codec tag (low nibble) | zone presence (bit 4)
//	  len            uvarint   stream length in the inflated concatenation
//	                           (omitted in row-text chunks); offsets are
//	                           implied — each stream starts where the
//	                           previous ended
//	  min            varint    integer zone lower bound (only when zoned)
//	  span           uvarint   max - min (only when zoned)
//
// A v3 chunk may instead carry flag bit2 (row text): its payload is the
// block-compressed row-major wire text — chosen when the writer measures
// that layout compresses smaller (e.g. under a dictionary trained on
// row-major samples) — and the column directory keeps only zones and tags
// with zero off/len.
//
// The whole v3 footer (chunk entries + column directories) is itself
// block-compressed; the tail's footer length counts the compressed bytes.
//
// Readers reconstruct a v3 chunk's exact wire text by decoding every
// stream and re-joining fields (ChunkData), or materialize just the
// columns a query touches (ChunkColumns). Readers accept versions 1-3;
// the row Writer emits v2 and the ColumnWriter emits v3.
//
// The format byte selects the read path: files that do not start with the
// magic are legacy whole-blob leaves and must be read through the codec
// directly. Versioning lives in the fifth header byte so later formats can
// evolve without breaking recovery of stores written by today's engine.
package segment

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"sync"

	"spate/internal/compress"
	"spate/internal/telco"
)

// Format constants.
const (
	// Version is the newest format a reader understands.
	Version = 3
	// RowVersion is the version the row-oriented Writer emits; the
	// ColumnWriter emits Version.
	RowVersion = 2

	headerLen = 5 // magic + version
	tailLen   = 8 // footer length + tail magic

	// maxCols bounds the column directory a reader will allocate for.
	maxCols = 1 << 12

	// SketchBytes is the largest per-chunk cell-id bloom filter; version-1
	// files always use it, version-2 writers size down to the chunk's
	// distinct-cell count.
	SketchBytes = 128

	// minSketchBytes floors adaptive sketch sizing so even a one-cell
	// chunk's bloom stays sparse.
	minSketchBytes = 8

	// sketchBitsPerCell targets ~12 bits per distinct cell before rounding
	// up to a power of two — roughly 1% false positives at k=3.
	sketchBitsPerCell = 12

	sketchHashes = 3

	flagNoTS   = 1 << 0 // chunk holds rows without a parseable timestamp
	flagNoCell = 1 << 1 // chunk holds rows without a cell id column

	// colTagMask and colZoneBit split the column directory's per-column
	// lead byte: codec tag in the low nibble, zone presence in bit 4.
	colTagMask = 0x0f
	colZoneBit = 0x10
	// flagRowText marks a v3 chunk whose payload is the block-compressed
	// row-major wire text instead of packed column streams — written when
	// the writer measures that the text compresses smaller (typically under
	// a dictionary trained on row-major samples). The column directory
	// keeps its zone maps; Off/Len are zero.
	flagRowText = 1 << 2
)

var (
	magic     = [4]byte{'S', 'P', 'S', 'G'}
	tailMagic = [4]byte{'G', 'S', 'P', 'S'}
)

// DefaultChunkSize is the target uncompressed bytes per chunk. 256 KiB
// keeps per-chunk decode latency low while the footer stays a fraction of
// a percent of the data.
const DefaultChunkSize = 256 << 10

// maxFooter bounds the footer a reader will allocate for.
const maxFooter = 64 << 20

// RowMeta carries the per-record statistics the writer folds into chunk
// metadata.
type RowMeta struct {
	// TS is the record's timestamp; HasTS is false when the schema has no
	// timestamp attribute or the value is null (such rows defeat window
	// pruning for their chunk).
	TS    int64 // unix nanoseconds
	HasTS bool
	// Cell is the record's cell id; HasCell is false when the schema has no
	// cell-id attribute (such rows defeat spatial pruning for their chunk).
	Cell    int64
	HasCell bool
}

// Chunk describes one stored chunk — the zone-map entry readers prune by.
type Chunk struct {
	Off   int64 // payload offset within the segment file
	Len   int64 // compressed payload bytes
	ULen  int64 // uncompressed (wire text) bytes
	Rows  int64
	CRC   uint32
	Flags byte
	MinTS int64 // unix nanos; valid only when some row carried a timestamp
	MaxTS int64

	// Sketch is the chunk's cell-id bloom filter: 0 or a power-of-two
	// number of bytes up to SketchBytes. Empty means the chunk either
	// holds no cell ids (flagNoCell defeats pruning) or was written empty.
	Sketch []byte

	// Cols is the v3 column directory: one entry per schema column, in
	// schema order. Nil for v1/v2 row-major chunks.
	Cols []ColMeta
}

// RowMajor reports whether a v3 chunk stores row-major wire text rather
// than packed column streams (the writer's per-chunk layout choice).
func (c Chunk) RowMajor() bool { return c.Flags&flagRowText != 0 }

// ColMeta locates and describes one column stream of a v3 chunk.
type ColMeta struct {
	// Tag is the column codec (compress.ColPlain/ColDict/ColDelta).
	Tag byte
	// Off and Len locate the stream within the chunk's inflated packed
	// concatenation (both zero in row-text chunks).
	Off int64
	Len int64
	// HasZone marks columns whose every field in the chunk is a canonical
	// base-10 integer; Min and Max then bound the values. Zone presence
	// implies the column has no nulls (blank fields) in the chunk.
	HasZone  bool
	Min, Max int64
}

// OverlapsWindow reports whether the chunk may hold a row inside the
// half-open window w. Chunks holding rows without timestamps always may.
func (c Chunk) OverlapsWindow(w telco.TimeRange) bool {
	if c.Flags&flagNoTS != 0 {
		return true
	}
	return c.MinTS < w.To.UnixNano() && c.MaxTS >= w.From.UnixNano()
}

// HasTimeGaps reports whether the chunk holds rows without timestamps —
// such rows match every window, so the chunk defeats window pruning.
func (c Chunk) HasTimeGaps() bool { return c.Flags&flagNoTS != 0 }

// HasCellGaps reports whether the chunk holds rows without a cell id —
// such rows survive any spatial filter, so the chunk defeats cell pruning.
func (c Chunk) HasCellGaps() bool { return c.Flags&flagNoCell != 0 }

// MayContainCell reports whether the chunk may hold a row of the given
// cell. False positives are possible (it is a bloom filter); false
// negatives are not.
func (c Chunk) MayContainCell(id int64) bool {
	if c.Flags&flagNoCell != 0 {
		return true
	}
	bits := uint64(len(c.Sketch)) * 8
	if bits == 0 {
		return false // every row carried a cell id, and none was recorded
	}
	h := uint64(id)
	for i := 0; i < sketchHashes; i++ {
		h = mix64(h + uint64(i)*0x9e3779b97f4a7c15)
		bit := h % bits
		if c.Sketch[bit/8]&(1<<(bit%8)) == 0 {
			return false
		}
	}
	return true
}

// MayContainAnyCell reports whether the chunk may hold a row of any of the
// given cells. An empty candidate list means "no spatial pruning" and
// always returns true.
func (c Chunk) MayContainAnyCell(ids []int64) bool {
	if len(ids) == 0 || c.Flags&flagNoCell != 0 {
		return true
	}
	for _, id := range ids {
		if c.MayContainCell(id) {
			return true
		}
	}
	return false
}

// mix64 is splitmix64's finalizer — a cheap avalanche over cell ids.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

func sketchSet(s []byte, id int64) {
	bits := uint64(len(s)) * 8
	h := uint64(id)
	for i := 0; i < sketchHashes; i++ {
		h = mix64(h + uint64(i)*0x9e3779b97f4a7c15)
		bit := h % bits
		s[bit/8] |= 1 << (bit % 8)
	}
}

// sketchSizeFor picks the bloom size for a chunk with n distinct cells:
// the smallest power of two giving sketchBitsPerCell bits per cell, capped
// at SketchBytes.
func sketchSizeFor(n int) int {
	size := minSketchBytes
	for size*8 < n*sketchBitsPerCell && size < SketchBytes {
		size <<= 1
	}
	return size
}

// foldUnion unions two power-of-two blooms at the larger of their sizes.
// The smaller bloom tiles up: a key's bit at m bytes is h mod 8m, so at 2m
// the bit is either that position or that position plus 8m — repeating the
// bloom sets both candidates, preserving no-false-negatives at the
// smaller bloom's original density.
func foldUnion(a, b []byte) []byte {
	if len(a) == 0 {
		return append([]byte(nil), b...)
	}
	if len(b) == 0 {
		return append([]byte(nil), a...)
	}
	if len(b) > len(a) {
		a, b = b, a
	}
	out := append([]byte(nil), a...)
	for i := range out {
		out[i] |= b[i%len(b)]
	}
	return out
}

// bufPool recycles the writer's accumulation buffers across snapshots —
// ingest builds two segments per epoch forever, so per-epoch allocation
// would churn hundreds of MB per simulated day.
var bufPool = sync.Pool{
	New: func() any { return new(bytes.Buffer) },
}

// Writer accumulates wire-text rows into chunks and renders the segment.
// It is not safe for concurrent use; ingest runs one writer per table
// worker.
type Writer struct {
	codec     compress.Codec
	chunkSize int

	out *bytes.Buffer // rendered segment so far (header + flushed payloads)
	cur *bytes.Buffer // wire text of the chunk being accumulated

	chunks []Chunk

	// current chunk stats
	rows  int64
	minTS int64
	maxTS int64
	flags byte
	// cells collects the current chunk's distinct cell ids; the sketch is
	// sized and built from it at flush time.
	cells map[int64]struct{}
	// folded unions sketches folded in through AppendChunk (the merge
	// path), where only the bloom — not the cell set — is known.
	folded []byte

	finished bool
}

// NewWriter returns a writer compressing chunks with the given codec. A
// non-positive chunkSize selects DefaultChunkSize.
func NewWriter(codec compress.Codec, chunkSize int) *Writer {
	if chunkSize <= 0 {
		chunkSize = DefaultChunkSize
	}
	w := &Writer{
		codec:     codec,
		chunkSize: chunkSize,
		out:       bufPool.Get().(*bytes.Buffer),
		cur:       bufPool.Get().(*bytes.Buffer),
	}
	w.out.Reset()
	w.cur.Reset()
	w.out.Write(magic[:])
	w.out.WriteByte(RowVersion)
	w.resetChunkStats()
	return w
}

func (w *Writer) resetChunkStats() {
	w.rows = 0
	w.minTS = math.MaxInt64
	w.maxTS = math.MinInt64
	w.flags = 0
	if w.cells == nil {
		w.cells = make(map[int64]struct{})
	} else {
		clear(w.cells)
	}
	w.folded = nil
}

// AppendRow adds one wire-text line (including its trailing newline) with
// its pruning metadata. Rows are stored in append order, so concatenating
// every chunk's inflated text reproduces the table's wire form exactly.
func (w *Writer) AppendRow(line []byte, m RowMeta) error {
	if w.finished {
		return fmt.Errorf("segment: append after Finish")
	}
	w.cur.Write(line)
	w.rows++
	if m.HasTS {
		if m.TS < w.minTS {
			w.minTS = m.TS
		}
		if m.TS > w.maxTS {
			w.maxTS = m.TS
		}
	} else {
		w.flags |= flagNoTS
	}
	if m.HasCell {
		w.cells[m.Cell] = struct{}{}
	} else {
		w.flags |= flagNoCell
	}
	if w.cur.Len() >= w.chunkSize {
		return w.flushChunk()
	}
	return nil
}

// AppendChunk folds one stored chunk — its inflated wire text plus footer
// statistics — into the writer, the compactor's merge path: undersized
// neighbours accumulate into the current chunk until it reaches the target
// size. Stats fold conservatively: flags OR together, sketches union, and
// the timestamp bounds widen (an all-flagged chunk's sentinel bounds fold
// harmlessly, and its flag defeats pruning regardless).
func (w *Writer) AppendChunk(text []byte, ch Chunk) error {
	if w.finished {
		return fmt.Errorf("segment: append after Finish")
	}
	w.cur.Write(text)
	w.rows += ch.Rows
	if ch.MinTS < w.minTS {
		w.minTS = ch.MinTS
	}
	if ch.MaxTS > w.maxTS {
		w.maxTS = ch.MaxTS
	}
	w.flags |= ch.Flags
	if len(ch.Sketch) > 0 {
		w.folded = foldUnion(w.folded, ch.Sketch)
	}
	if w.cur.Len() >= w.chunkSize {
		return w.flushChunk()
	}
	return nil
}

func (w *Writer) flushChunk() error {
	if w.cur.Len() == 0 {
		return nil
	}
	off := int64(w.out.Len())
	sw := compress.NewStreamWriterSize(w.codec, w.out, w.chunkSize)
	if _, err := sw.Write(w.cur.Bytes()); err != nil {
		return fmt.Errorf("segment: compress chunk: %w", err)
	}
	if err := sw.Close(); err != nil {
		return fmt.Errorf("segment: compress chunk: %w", err)
	}
	payload := w.out.Bytes()[off:]
	// Build the sketch sized to the chunk's distinct-cell count. A chunk
	// carrying cell-less rows skips it entirely: flagNoCell already defeats
	// spatial pruning, so the bloom would be dead weight.
	var sk []byte
	if w.flags&flagNoCell == 0 {
		if len(w.cells) > 0 {
			sk = make([]byte, sketchSizeFor(len(w.cells)))
			for id := range w.cells {
				sketchSet(sk, id)
			}
		}
		if len(w.folded) > 0 {
			sk = foldUnion(sk, w.folded)
		}
	}
	ch := Chunk{
		Off:    off,
		Len:    int64(len(payload)),
		ULen:   int64(w.cur.Len()),
		Rows:   w.rows,
		CRC:    crc32.ChecksumIEEE(payload),
		Flags:  w.flags,
		MinTS:  w.minTS,
		MaxTS:  w.maxTS,
		Sketch: sk,
	}
	w.chunks = append(w.chunks, ch)
	w.cur.Reset()
	w.resetChunkStats()
	return nil
}

// Stats summarizes a finished segment.
type Stats struct {
	Chunks   int
	RawBytes int64 // uncompressed wire text across chunks
}

// Finish flushes the last chunk, appends the footer and returns the
// rendered segment. The writer's buffers return to the pool; the returned
// slice is owned by the caller.
func (w *Writer) Finish() ([]byte, Stats, error) {
	if w.finished {
		return nil, Stats{}, fmt.Errorf("segment: double Finish")
	}
	w.finished = true
	if err := w.flushChunk(); err != nil {
		return nil, Stats{}, err
	}
	st := writeFooter(w.out, w.chunks, nil)

	data := append([]byte(nil), w.out.Bytes()...)
	bufPool.Put(w.out)
	bufPool.Put(w.cur)
	w.out, w.cur = nil, nil
	return data, st, nil
}

// writeFooter appends the footer and tail for the accumulated chunks.
// A non-nil codec selects the v3 footer entry (column directory after the
// sketch) and block-compresses the whole footer — per-chunk column
// directories are repetitive enough that plain storage would dominate
// small segments.
func writeFooter(dst *bytes.Buffer, chunks []Chunk, codec compress.Codec) Stats {
	withCols := codec != nil
	out := dst
	if withCols {
		out = new(bytes.Buffer)
	}
	footStart := out.Len()
	var tmp [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) {
		n := binary.PutUvarint(tmp[:], v)
		out.Write(tmp[:n])
	}
	putVarint := func(v int64) {
		n := binary.PutVarint(tmp[:], v)
		out.Write(tmp[:n])
	}
	putUvarint(uint64(len(chunks)))
	var st Stats
	st.Chunks = len(chunks)
	for _, c := range chunks {
		putUvarint(uint64(c.Off))
		putUvarint(uint64(c.Len))
		putUvarint(uint64(c.ULen))
		putUvarint(uint64(c.Rows))
		binary.LittleEndian.PutUint32(tmp[:4], c.CRC)
		out.Write(tmp[:4])
		out.WriteByte(c.Flags)
		binary.LittleEndian.PutUint64(tmp[:8], uint64(c.MinTS))
		out.Write(tmp[:8])
		binary.LittleEndian.PutUint64(tmp[:8], uint64(c.MaxTS))
		out.Write(tmp[:8])
		putUvarint(uint64(len(c.Sketch)))
		out.Write(c.Sketch)
		if withCols {
			putUvarint(uint64(len(c.Cols)))
			for _, m := range c.Cols {
				// One byte carries the codec tag (low bits) and the
				// zone-presence flag; stream offsets are implied (each
				// stream starts where the previous ended), and row-text
				// chunks omit lengths entirely.
				combo := m.Tag
				if m.HasZone {
					combo |= colZoneBit
				}
				out.WriteByte(combo)
				if !c.RowMajor() {
					putUvarint(uint64(m.Len))
				}
				if m.HasZone {
					putVarint(m.Min)
					putUvarint(uint64(m.Max - m.Min))
				}
			}
		}
		st.RawBytes += c.ULen
	}
	if withCols {
		footStart = dst.Len()
		dst.Write(codec.Compress(nil, out.Bytes()))
		out = dst
	}
	binary.LittleEndian.PutUint32(tmp[:4], uint32(out.Len()-footStart))
	out.Write(tmp[:4])
	out.Write(tailMagic[:])
	return st
}

// IsSegment sniffs the format byte: it reports whether the file carries
// the segment magic. Legacy whole-blob leaves (raw codec output) do not.
func IsSegment(r io.ReaderAt, size int64) bool {
	if size < int64(headerLen+tailLen) {
		return false
	}
	var hdr [headerLen]byte
	if _, err := r.ReadAt(hdr[:], 0); err != nil {
		return false
	}
	return bytes.Equal(hdr[:4], magic[:])
}

// Reader opens a segment through ranged reads: construction costs the
// 5-byte header probe plus one footer read, independent of segment size.
type Reader struct {
	src     io.ReaderAt
	codec   compress.Codec
	size    int64
	version byte
	chunks  []Chunk
}

// Open parses the segment footer from src. The codec must match the
// writer's.
func Open(src io.ReaderAt, size int64, codec compress.Codec) (*Reader, error) {
	if size < int64(headerLen+tailLen) {
		return nil, compress.Corruptf("segment: %d bytes is too short", size)
	}
	var hdr [headerLen]byte
	if _, err := src.ReadAt(hdr[:], 0); err != nil {
		return nil, fmt.Errorf("segment: read header: %w", err)
	}
	if !bytes.Equal(hdr[:4], magic[:]) {
		return nil, compress.Corruptf("segment: bad magic %x", hdr[:4])
	}
	version := hdr[4]
	if version < 1 || version > Version {
		return nil, fmt.Errorf("segment: unsupported version %d (have %d)", version, Version)
	}
	var tail [tailLen]byte
	if _, err := src.ReadAt(tail[:], size-tailLen); err != nil {
		return nil, fmt.Errorf("segment: read tail: %w", err)
	}
	if !bytes.Equal(tail[4:], tailMagic[:]) {
		return nil, compress.Corruptf("segment: bad tail magic %x", tail[4:])
	}
	footLen := int64(binary.LittleEndian.Uint32(tail[:4]))
	if footLen <= 0 || footLen > maxFooter || footLen > size-int64(headerLen+tailLen) {
		return nil, compress.Corruptf("segment: footer of %d bytes out of range", footLen)
	}
	foot := make([]byte, footLen)
	if _, err := src.ReadAt(foot, size-tailLen-footLen); err != nil {
		return nil, fmt.Errorf("segment: read footer: %w", err)
	}
	if version >= 3 {
		// v3 footers are block-compressed (the per-chunk column
		// directories dominate small segments stored plain).
		inflated, err := codec.Decompress(nil, foot)
		if err != nil {
			return nil, fmt.Errorf("segment: inflate footer: %w", err)
		}
		if int64(len(inflated)) > maxFooter {
			return nil, compress.Corruptf("segment: footer inflates to %d bytes", len(inflated))
		}
		foot = inflated
	}
	r := &Reader{src: src, codec: codec, size: size, version: version}
	br := bytes.NewReader(foot)
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, compress.Corruptf("segment: footer count")
	}
	if n > uint64(len(foot)) { // each entry takes > 1 byte; cheap sanity cap
		return nil, compress.Corruptf("segment: footer claims %d chunks", n)
	}
	r.chunks = make([]Chunk, 0, n)
	dataEnd := size - tailLen - footLen
	for i := uint64(0); i < n; i++ {
		var c Chunk
		if c.Off, err = readUvarint64(br); err != nil {
			return nil, compress.Corruptf("segment: chunk %d offset", i)
		}
		if c.Len, err = readUvarint64(br); err != nil {
			return nil, compress.Corruptf("segment: chunk %d length", i)
		}
		if c.ULen, err = readUvarint64(br); err != nil {
			return nil, compress.Corruptf("segment: chunk %d ulen", i)
		}
		if c.Rows, err = readUvarint64(br); err != nil {
			return nil, compress.Corruptf("segment: chunk %d rows", i)
		}
		var fixed [4 + 1 + 8 + 8]byte
		if _, err := io.ReadFull(br, fixed[:]); err != nil {
			return nil, compress.Corruptf("segment: chunk %d stats", i)
		}
		c.CRC = binary.LittleEndian.Uint32(fixed[0:4])
		c.Flags = fixed[4]
		c.MinTS = int64(binary.LittleEndian.Uint64(fixed[5:13]))
		c.MaxTS = int64(binary.LittleEndian.Uint64(fixed[13:21]))
		skLen := int64(SketchBytes) // v1: fixed-size sketch
		if version >= 2 {
			if skLen, err = readUvarint64(br); err != nil {
				return nil, compress.Corruptf("segment: chunk %d sketch length", i)
			}
			// Power-of-two sizing is what makes blooms foldable; reject
			// anything else before a later merge would fold it wrongly.
			if skLen > SketchBytes || (skLen != 0 && skLen&(skLen-1) != 0) {
				return nil, compress.Corruptf("segment: chunk %d sketch of %d bytes", i, skLen)
			}
		}
		if skLen > 0 {
			c.Sketch = make([]byte, skLen)
			if _, err := io.ReadFull(br, c.Sketch); err != nil {
				return nil, compress.Corruptf("segment: chunk %d sketch", i)
			}
		}
		if c.Off < headerLen || c.Len <= 0 || c.Off+c.Len > dataEnd {
			return nil, compress.Corruptf("segment: chunk %d spans [%d,+%d) outside data area", i, c.Off, c.Len)
		}
		if version >= 3 {
			ncols, err := readUvarint64(br)
			if err != nil || ncols == 0 || ncols > maxCols {
				return nil, compress.Corruptf("segment: chunk %d column count", i)
			}
			c.Cols = make([]ColMeta, ncols)
			off := int64(0)
			for j := range c.Cols {
				m := &c.Cols[j]
				combo, err := br.ReadByte()
				if err != nil || combo&^(colTagMask|colZoneBit) != 0 {
					return nil, compress.Corruptf("segment: chunk %d column %d tag byte", i, j)
				}
				m.Tag = combo & colTagMask
				if !c.RowMajor() {
					// Stream offsets are implied: each stream starts
					// where the previous ended in the inflated packed
					// concatenation (its size is only known after
					// decompression).
					if m.Len, err = readUvarint64(br); err != nil {
						return nil, compress.Corruptf("segment: chunk %d column %d length", i, j)
					}
					m.Off = off
					off += m.Len
				}
				if combo&colZoneBit != 0 {
					m.HasZone = true
					if m.Min, err = binary.ReadVarint(br); err != nil {
						return nil, compress.Corruptf("segment: chunk %d column %d zone min", i, j)
					}
					span, err := binary.ReadUvarint(br)
					if err != nil {
						return nil, compress.Corruptf("segment: chunk %d column %d zone span", i, j)
					}
					m.Max = m.Min + int64(span)
					if m.Min > m.Max {
						return nil, compress.Corruptf("segment: chunk %d column %d inverted zone", i, j)
					}
				}
			}
		}
		r.chunks = append(r.chunks, c)
	}
	return r, nil
}

func readUvarint64(br *bytes.Reader) (int64, error) {
	v, err := binary.ReadUvarint(br)
	if err != nil || v > math.MaxInt64 {
		return 0, compress.ErrCorrupt
	}
	return int64(v), nil
}

// Chunks exposes the chunk directory for pruning decisions.
func (r *Reader) Chunks() []Chunk { return r.chunks }

// NumChunks returns the chunk count.
func (r *Reader) NumChunks() int { return len(r.chunks) }

// Version reports the segment's format version (1-3).
func (r *Reader) Version() int { return int(r.version) }

// Columnar reports whether chunk payloads are column-major (v3).
func (r *Reader) Columnar() bool { return r.version >= 3 }

// ChunkData fetches, verifies and inflates chunk i, returning its wire
// text. The read is ranged: only the chunk's payload bytes travel. For a
// v3 chunk every column stream decodes and the fields re-join — escaping
// is deterministic, so the reconstruction is bit-for-bit the text a row
// writer would have stored.
func (r *Reader) ChunkData(i int) ([]byte, error) {
	c, payload, err := r.chunkPayload(i)
	if err != nil {
		return nil, err
	}
	if r.version >= 3 {
		if c.RowMajor() {
			return r.inflateRowText(i, c, payload)
		}
		cols, _, err := r.decodeColumns(i, c, payload, nil)
		if err != nil {
			return nil, err
		}
		var b bytes.Buffer
		b.Grow(int(c.ULen))
		for row := int64(0); row < c.Rows; row++ {
			for k := range cols {
				if k > 0 {
					b.WriteByte('|')
				}
				b.WriteString(cols[k][row])
			}
			b.WriteByte('\n')
		}
		if int64(b.Len()) != c.ULen {
			return nil, compress.Corruptf("segment: chunk %d reassembled to %d bytes, footer says %d",
				i, b.Len(), c.ULen)
		}
		return b.Bytes(), nil
	}
	text, err := io.ReadAll(compress.NewStreamReader(r.codec, bytes.NewReader(payload)))
	if err != nil {
		return nil, fmt.Errorf("segment: inflate chunk %d: %w", i, err)
	}
	if int64(len(text)) != c.ULen {
		return nil, compress.Corruptf("segment: chunk %d inflated to %d bytes, footer says %d",
			i, len(text), c.ULen)
	}
	return text, nil
}

// ChunkColumns fetches chunk i and materializes only the columns in want
// (schema positions). It returns one field slice per requested column, in
// want order, plus the inflated byte count actually decoded — the
// selective-scan savings the profile counters report. Only valid for v3
// segments.
func (r *Reader) ChunkColumns(i int, want []int) ([][]string, int64, error) {
	if r.version < 3 {
		return nil, 0, fmt.Errorf("segment: ChunkColumns on v%d segment", r.version)
	}
	c, payload, err := r.chunkPayload(i)
	if err != nil {
		return nil, 0, err
	}
	return r.decodeColumns(i, c, payload, want)
}

// chunkPayload reads and CRC-verifies chunk i's payload.
func (r *Reader) chunkPayload(i int) (Chunk, []byte, error) {
	if i < 0 || i >= len(r.chunks) {
		return Chunk{}, nil, fmt.Errorf("segment: no chunk %d of %d", i, len(r.chunks))
	}
	c := r.chunks[i]
	payload := make([]byte, c.Len)
	if _, err := r.src.ReadAt(payload, c.Off); err != nil {
		return Chunk{}, nil, fmt.Errorf("segment: read chunk %d: %w", i, err)
	}
	if crc32.ChecksumIEEE(payload) != c.CRC {
		return Chunk{}, nil, compress.Corruptf("segment: chunk %d CRC mismatch", i)
	}
	return c, payload, nil
}

// inflateRowText inflates a row-text chunk's payload back to wire text.
func (r *Reader) inflateRowText(i int, c Chunk, payload []byte) ([]byte, error) {
	text, err := r.codec.Decompress(nil, payload)
	if err != nil {
		return nil, fmt.Errorf("segment: inflate chunk %d: %w", i, err)
	}
	if int64(len(text)) != c.ULen {
		return nil, compress.Corruptf("segment: chunk %d inflated to %d bytes, footer says %d",
			i, len(text), c.ULen)
	}
	return text, nil
}

// decodeColumns decodes the selected column streams of a v3 chunk (every
// column when want is nil), returning the fields per column and the
// inflated bytes decoded. The chunk's block codec inflates the payload
// once; only the wanted streams are then parsed. Row-text chunks split the
// inflated wire text instead — the caller-visible result is identical.
func (r *Reader) decodeColumns(i int, c Chunk, payload []byte, want []int) ([][]string, int64, error) {
	if want == nil {
		want = make([]int, len(c.Cols))
		for k := range want {
			want[k] = k
		}
	}
	for _, col := range want {
		if col < 0 || col >= len(c.Cols) {
			return nil, 0, fmt.Errorf("segment: chunk %d has no column %d", i, col)
		}
	}
	out := make([][]string, len(want))
	if c.RowMajor() {
		text, err := r.inflateRowText(i, c, payload)
		if err != nil {
			return nil, 0, err
		}
		for k := range out {
			out[k] = make([]string, 0, c.Rows)
		}
		rows := int64(0)
		for start := 0; start < len(text); {
			end := bytes.IndexByte(text[start:], '\n')
			if end < 0 {
				return nil, 0, compress.Corruptf("segment: chunk %d unterminated row", i)
			}
			fields := telco.SplitFields(string(text[start : start+end]))
			if len(fields) != len(c.Cols) {
				return nil, 0, compress.Corruptf("segment: chunk %d row has %d fields, want %d",
					i, len(fields), len(c.Cols))
			}
			for k, col := range want {
				out[k] = append(out[k], fields[col])
			}
			rows++
			start += end + 1
		}
		if rows != c.Rows {
			return nil, 0, compress.Corruptf("segment: chunk %d holds %d rows, footer says %d",
				i, rows, c.Rows)
		}
		return out, inflatedOf(out), nil
	}
	packed, err := r.codec.Decompress(nil, payload)
	if err != nil {
		return nil, 0, fmt.Errorf("segment: inflate chunk %d: %w", i, err)
	}
	total := int64(0)
	for _, m := range c.Cols {
		if m.Off != total {
			return nil, 0, compress.Corruptf("segment: chunk %d column streams not contiguous", i)
		}
		total += m.Len
	}
	if int64(len(packed)) != total {
		return nil, 0, compress.Corruptf("segment: chunk %d packed to %d bytes, footer says %d",
			i, len(packed), total)
	}
	for k, col := range want {
		m := c.Cols[col]
		vals, err := compress.DecodeColumn(make([]string, 0, c.Rows), m.Tag,
			packed[m.Off:m.Off+m.Len], int(c.Rows))
		if err != nil {
			return nil, 0, fmt.Errorf("segment: chunk %d column %d: %w", i, col, err)
		}
		out[k] = vals
	}
	return out, inflatedOf(out), nil
}

// inflatedOf sums the wire-text share of materialized fields — the
// selective-scan savings the profile counters report.
func inflatedOf(cols [][]string) int64 {
	n := int64(0)
	for _, vals := range cols {
		for _, v := range vals {
			n += int64(len(v)) + 1 // field + its separator share of the wire text
		}
	}
	return n
}
