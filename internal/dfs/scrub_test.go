package dfs

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"testing"
)

// writeBlocks fills the cluster with n multi-block files and returns their
// paths and contents.
func writeBlocks(t *testing.T, c *Cluster, n int) (paths []string, data map[string][]byte) {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	data = make(map[string][]byte)
	for i := 0; i < n; i++ {
		p := fmt.Sprintf("/spate/data/file-%d", i)
		b := make([]byte, 2500+i*700) // spans multiple 1 KiB blocks
		rng.Read(b)
		if err := c.WriteFile(p, b); err != nil {
			t.Fatal(err)
		}
		paths = append(paths, p)
		data[p] = b
	}
	return paths, data
}

func verifyAll(t *testing.T, c *Cluster, data map[string][]byte) {
	t.Helper()
	for p, want := range data {
		got, err := c.ReadFile(p)
		if err != nil {
			t.Fatalf("read %s: %v", p, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("%s: content mismatch after repair", p)
		}
	}
}

// TestScrubQuarantinesCorruptReplica is the scrubber acceptance path: an
// injected corrupt replica is detected by checksum, quarantined aside, and
// replication is restored from the healthy copy.
func TestScrubQuarantinesCorruptReplica(t *testing.T) {
	c := newTestCluster(t, Config{BlockSize: 1024, Replication: 2, DataNodes: 3})
	paths, data := writeBlocks(t, c, 3)

	node, err := c.CorruptBlock(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if res.CorruptReplicas != 1 {
		t.Fatalf("scrub found %d corrupt replicas, want 1 (result %+v)", res.CorruptReplicas, res)
	}
	if res.ReplicasRestored != 1 {
		t.Fatalf("scrub restored %d replicas, want 1", res.ReplicasRestored)
	}
	if res.BytesRepaired == 0 || res.UnrecoverableBlocks != 0 {
		t.Fatalf("scrub result %+v", res)
	}
	if n := c.UnderReplicated(); n != 0 {
		t.Fatalf("%d blocks under-replicated after scrub", n)
	}
	verifyAll(t, c, data)

	// The damaged bytes were moved aside for post-mortems, not deleted.
	bid := c.files[paths[0]].blocks[0].id
	if _, err := os.Stat(blockFile(c.nodes[node].dir, bid) + ".corrupt"); err != nil {
		t.Errorf("quarantined replica missing: %v", err)
	}

	// A follow-up scrub finds a clean cluster.
	res2, err := c.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if res2.CorruptReplicas+res2.MissingReplicas+res2.ReplicasRestored != 0 {
		t.Errorf("second scrub was not a no-op: %+v", res2)
	}
}

// TestScrubDetectsMissingReplica deletes a block file out from under the
// cluster; the scrubber counts it missing and restores replication.
func TestScrubDetectsMissingReplica(t *testing.T) {
	c := newTestCluster(t, Config{BlockSize: 1024, Replication: 2, DataNodes: 3})
	paths, data := writeBlocks(t, c, 2)

	bm := c.files[paths[1]].blocks[0]
	if err := os.Remove(blockFile(c.nodes[bm.replicas[0]].dir, bm.id)); err != nil {
		t.Fatal(err)
	}
	res, err := c.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if res.MissingReplicas != 1 || res.ReplicasRestored != 1 {
		t.Fatalf("scrub result %+v, want 1 missing / 1 restored", res)
	}
	if n := c.UnderReplicated(); n != 0 {
		t.Fatalf("%d blocks under-replicated after scrub", n)
	}
	verifyAll(t, c, data)
}

// TestScrubRereplicatesAfterNodeDeath kills a datanode: every block it held
// drops below the replication target until a scrub repairs the cluster.
func TestScrubRereplicatesAfterNodeDeath(t *testing.T) {
	c := newTestCluster(t, Config{BlockSize: 1024, Replication: 2, DataNodes: 4})
	_, data := writeBlocks(t, c, 4)

	if err := c.KillNode(0); err != nil {
		t.Fatal(err)
	}
	if c.UnderReplicated() == 0 {
		t.Skip("node 0 held no blocks (placement did not use it)")
	}
	res, err := c.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if res.ReplicasRestored == 0 {
		t.Fatalf("scrub restored nothing after node death: %+v", res)
	}
	if n := c.UnderReplicated(); n != 0 {
		t.Fatalf("%d blocks still under-replicated", n)
	}
	if u := c.Usage(); u.UnderReplicatedBlocks != 0 || u.LiveNodes != 3 {
		t.Fatalf("usage %+v", u)
	}
	verifyAll(t, c, data)
}

// TestScrubHookInjectsFaults drives the injectable corruption hook: a
// replica the hook rejects is quarantined even though its bytes are fine,
// and removing the hook returns the scrubber to a clean pass.
func TestScrubHookInjectsFaults(t *testing.T) {
	c := newTestCluster(t, Config{BlockSize: 1024, Replication: 2, DataNodes: 3})
	paths, data := writeBlocks(t, c, 2)

	target := paths[0]
	bm := c.files[target].blocks[0]
	badNode := bm.replicas[0]
	c.SetScrubHook(func(path string, block int64, node int) error {
		if path == target && block == bm.id && node == badNode {
			return errors.New("injected fault")
		}
		return nil
	})
	res, err := c.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	// The hook keeps rejecting that node, so the repair lands elsewhere and
	// the replica stays quarantined exactly once.
	if res.CorruptReplicas != 1 || res.ReplicasRestored != 1 {
		t.Fatalf("scrub result %+v, want 1 corrupt / 1 restored", res)
	}
	c.SetScrubHook(nil)
	res2, err := c.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if res2.CorruptReplicas+res2.MissingReplicas != 0 {
		t.Errorf("hook removed but scrub still flags replicas: %+v", res2)
	}
	if n := c.UnderReplicated(); n != 0 {
		t.Fatalf("%d blocks under-replicated", n)
	}
	verifyAll(t, c, data)
}

// TestScrubUnrecoverableBlocks: at replication 1 a dead node's blocks have
// no surviving copy — the scrubber reports them instead of pretending.
func TestScrubUnrecoverableBlocks(t *testing.T) {
	c := newTestCluster(t, Config{BlockSize: 1024, Replication: 1, DataNodes: 2})
	paths, data := writeBlocks(t, c, 2)

	// Find a node actually holding blocks and kill it.
	victim := c.files[paths[0]].blocks[0].replicas[0]
	if err := c.KillNode(victim); err != nil {
		t.Fatal(err)
	}
	res, err := c.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if res.UnrecoverableBlocks == 0 {
		t.Fatalf("scrub reports no unrecoverable blocks after killing node %d: %+v", victim, res)
	}
	// Revival brings the data back; the next scrub is clean again.
	if err := c.ReviveNode(victim); err != nil {
		t.Fatal(err)
	}
	res2, err := c.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if res2.UnrecoverableBlocks != 0 {
		t.Fatalf("blocks still unrecoverable after revival: %+v", res2)
	}
	verifyAll(t, c, data)
}
