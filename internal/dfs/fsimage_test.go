package dfs

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

func TestClusterRestartRecoversFiles(t *testing.T) {
	dir := t.TempDir()
	c1, err := NewCluster(dir, Config{BlockSize: 256, Replication: 2, DataNodes: 3})
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 1000)
	rand.New(rand.NewSource(1)).Read(data)
	if err := c1.WriteFile("/a/b", data); err != nil {
		t.Fatal(err)
	}
	if err := c1.WriteFile("/a/c", []byte("small")); err != nil {
		t.Fatal(err)
	}
	if err := c1.Delete("/a/c"); err != nil {
		t.Fatal(err)
	}

	// A fresh cluster object over the same root sees the surviving file.
	c2, err := NewCluster(dir, Config{BlockSize: 256, Replication: 2, DataNodes: 3})
	if err != nil {
		t.Fatal(err)
	}
	got, err := c2.ReadFile("/a/b")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("restart lost file contents")
	}
	if c2.Exists("/a/c") {
		t.Error("deleted file resurrected")
	}
	u := c2.Usage()
	if u.Files != 1 || u.LogicalBytes != 1000 {
		t.Errorf("usage after restart = %+v", u)
	}
	// Per-node accounting restored: 4 blocks x 2 replicas x 250B.
	if u.StoredBytes != 2000 {
		t.Errorf("stored bytes = %d, want 2000", u.StoredBytes)
	}
	// New writes continue with fresh block IDs (no collision with old
	// block files on the datanodes).
	if err := c2.WriteFile("/a/d", data); err != nil {
		t.Fatal(err)
	}
	got, err = c2.ReadFile("/a/d")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("post-restart write: %v", err)
	}
	// And the original remains intact.
	got, err = c2.ReadFile("/a/b")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("original after new writes: %v", err)
	}
}

func TestCorruptImageRejected(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "fsimage"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NewCluster(dir, Config{}); err == nil {
		t.Error("corrupt fsimage accepted")
	}
}

func TestRestartAfterRereplication(t *testing.T) {
	dir := t.TempDir()
	c1, err := NewCluster(dir, Config{BlockSize: 128, Replication: 2, DataNodes: 3})
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 500)
	rand.New(rand.NewSource(2)).Read(data)
	if err := c1.WriteFile("/f", data); err != nil {
		t.Fatal(err)
	}
	if err := c1.KillNode(0); err != nil {
		t.Fatal(err)
	}
	if _, err := c1.Rereplicate(); err != nil {
		t.Fatal(err)
	}
	// Restart: replica layout from the image includes the new copies.
	c2, err := NewCluster(dir, Config{BlockSize: 128, Replication: 2, DataNodes: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Even with node 0 dead again, everything reads.
	if err := c2.KillNode(0); err != nil {
		t.Fatal(err)
	}
	got, err := c2.ReadFile("/f")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("read after restart + node loss: %v", err)
	}
}
