package dfs

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"spate/internal/obs"
)

// TestObsCounters asserts the cluster's byte counters and op-latency
// histograms advance across a WriteFile/ReadFile round trip, including the
// degraded-read path after a node failure.
func TestObsCounters(t *testing.T) {
	reg := obs.NewRegistry()
	c := newTestCluster(t, Config{BlockSize: 512, Replication: 3, DataNodes: 4, Obs: reg})

	data := make([]byte, 2000)
	rand.New(rand.NewSource(7)).Read(data)
	if err := c.WriteFile("/obs/a", data); err != nil {
		t.Fatal(err)
	}
	got, err := c.ReadFile("/obs/a")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("round trip mismatch")
	}

	// Public byte accounting and its metric mirrors agree.
	if br := c.BytesRead(); br != int64(len(data)) {
		t.Errorf("BytesRead = %d, want %d", br, len(data))
	}
	wantW := int64(3 * len(data)) // every byte lands on 3 replicas
	if bw := c.BytesWritten(); bw != wantW {
		t.Errorf("BytesWritten = %d, want %d", bw, wantW)
	}
	if v := c.met.readB.Value(); v != c.BytesRead() {
		t.Errorf("spate_dfs_read_bytes_total = %d, want %d", v, c.BytesRead())
	}
	if v := c.met.writtenB.Value(); v != c.BytesWritten() {
		t.Errorf("spate_dfs_written_bytes_total = %d, want %d", v, c.BytesWritten())
	}

	// Op-latency histograms advanced once per operation.
	if n := c.met.opSec["write"].Count(); n != 1 {
		t.Errorf("write op observations = %d, want 1", n)
	}
	if n := c.met.opSec["read"].Count(); n != 1 {
		t.Errorf("read op observations = %d, want 1", n)
	}
	if s := c.met.opSec["read"].Sum(); s <= 0 {
		t.Errorf("read op latency sum = %v, want > 0", s)
	}

	// Degraded read: kill a node, read again. The file must still come
	// back, and any replica skip shows up as a failover; the read
	// histogram keeps advancing either way.
	if err := c.KillNode(0); err != nil {
		t.Fatal(err)
	}
	got, err = c.ReadFile("/obs/a")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("degraded round trip mismatch")
	}
	if n := c.met.opSec["read"].Count(); n != 2 {
		t.Errorf("read op observations after degraded read = %d, want 2", n)
	}
	if v := c.met.readB.Value(); v != 2*int64(len(data)) {
		t.Errorf("read bytes after degraded read = %d, want %d", v, 2*len(data))
	}
	// With replication 3 on 4 nodes, some block's first-choice replica may
	// or may not live on the dead node; the gauge is the reliable signal.
	if ur := c.UnderReplicated(); ur == 0 {
		t.Errorf("UnderReplicated = 0 after KillNode, want > 0")
	}

	// Rereplication writes recovery copies and is timed.
	created, err := c.Rereplicate()
	if err != nil {
		t.Fatal(err)
	}
	if created == 0 {
		t.Error("Rereplicate created no replicas on a degraded cluster")
	}
	if n := c.met.opSec["rereplicate"].Count(); n != 1 {
		t.Errorf("rereplicate op observations = %d, want 1", n)
	}
	if bw := c.met.writtenB.Value(); bw <= wantW {
		t.Errorf("written bytes after rereplicate = %d, want > %d", bw, wantW)
	}

	// Failed ops are counted.
	if _, err := c.ReadFile("/obs/missing"); err == nil {
		t.Fatal("read of missing file succeeded")
	}
	if v := c.met.opErrors.Value(); v != 1 {
		t.Errorf("spate_dfs_op_errors_total = %d, want 1", v)
	}

	// The registry renders the series, gauges included.
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		// 2 successful reads + the failed missing-file read above.
		`spate_dfs_op_seconds_count{op="read"} 3`,
		`spate_dfs_op_seconds_count{op="write"} 1`,
		"spate_dfs_read_bytes_total 4000",
		"spate_dfs_under_replicated_blocks",
		"spate_dfs_live_nodes 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}

// TestObsReplicaFailover forces reads through a dead first replica so the
// failover counter must advance.
func TestObsReplicaFailover(t *testing.T) {
	reg := obs.NewRegistry()
	c := newTestCluster(t, Config{BlockSize: 256, Replication: 2, DataNodes: 2, Obs: reg})
	data := []byte("spate replica failover probe")
	if err := c.WriteFile("/obs/b", data); err != nil {
		t.Fatal(err)
	}
	// With replication 2 on 2 nodes the single block lives on both; killing
	// node 0 forces the read to skip the first replica in the list.
	if err := c.KillNode(0); err != nil {
		t.Fatal(err)
	}
	got, err := c.ReadFile("/obs/b")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("round trip mismatch")
	}
	if v := c.met.replicaFO.Value(); v == 0 {
		t.Error("spate_dfs_replica_failovers_total = 0, want > 0")
	}
}

// TestObsDefaultRegistry ensures a cluster without an explicit registry
// reports into obs.Default rather than dropping metrics.
func TestObsDefaultRegistry(t *testing.T) {
	c := newTestCluster(t, Config{})
	before := obs.Default.Counter("spate_dfs_written_bytes_total", "").Value()
	if err := c.WriteFile("/obs/c", []byte("x")); err != nil {
		t.Fatal(err)
	}
	after := obs.Default.Counter("spate_dfs_written_bytes_total", "").Value()
	if after <= before {
		t.Errorf("default-registry written bytes did not advance: %d -> %d", before, after)
	}
}
