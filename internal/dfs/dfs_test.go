package dfs

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

func newTestCluster(t *testing.T, cfg Config) *Cluster {
	t.Helper()
	c, err := NewCluster(t.TempDir(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestWriteReadRoundTrip(t *testing.T) {
	c := newTestCluster(t, Config{BlockSize: 1024, Replication: 3, DataNodes: 4})
	tests := []struct {
		name string
		size int
	}{
		{"empty", 0},
		{"one byte", 1},
		{"sub-block", 100},
		{"exactly one block", 1024},
		{"multi-block", 5000},
		{"block boundary", 2048},
	}
	rng := rand.New(rand.NewSource(1))
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			data := make([]byte, tc.size)
			rng.Read(data)
			path := "/snapshots/" + tc.name
			if err := c.WriteFile(path, data); err != nil {
				t.Fatal(err)
			}
			got, err := c.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, data) {
				t.Fatalf("read %d bytes, want %d", len(got), len(data))
			}
			fi, err := c.Stat(path)
			if err != nil {
				t.Fatal(err)
			}
			if fi.Size != int64(tc.size) {
				t.Errorf("Stat size = %d, want %d", fi.Size, tc.size)
			}
			wantBlocks := (tc.size + 1023) / 1024
			if wantBlocks == 0 {
				wantBlocks = 1
			}
			if fi.Blocks != wantBlocks {
				t.Errorf("Stat blocks = %d, want %d", fi.Blocks, wantBlocks)
			}
		})
	}
}

func TestWriteOnceSemantics(t *testing.T) {
	c := newTestCluster(t, Config{})
	if err := c.WriteFile("/a", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := c.WriteFile("/a", []byte("y")); !errors.Is(err, ErrExists) {
		t.Errorf("overwrite err = %v, want ErrExists", err)
	}
}

func TestNotFound(t *testing.T) {
	c := newTestCluster(t, Config{})
	if _, err := c.ReadFile("/nope"); !errors.Is(err, ErrNotFound) {
		t.Errorf("ReadFile err = %v", err)
	}
	if _, err := c.Stat("/nope"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Stat err = %v", err)
	}
	if err := c.Delete("/nope"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Delete err = %v", err)
	}
	if c.Exists("/nope") {
		t.Error("Exists(/nope) = true")
	}
}

func TestReplicationAndUsage(t *testing.T) {
	c := newTestCluster(t, Config{BlockSize: 100, Replication: 3, DataNodes: 4})
	data := make([]byte, 250) // 3 blocks
	if err := c.WriteFile("/f", data); err != nil {
		t.Fatal(err)
	}
	u := c.Usage()
	if u.LogicalBytes != 250 {
		t.Errorf("LogicalBytes = %d", u.LogicalBytes)
	}
	if u.StoredBytes != 750 { // 3x replication
		t.Errorf("StoredBytes = %d, want 750", u.StoredBytes)
	}
	if u.Files != 1 || u.LiveNodes != 4 {
		t.Errorf("Usage = %+v", u)
	}
	if c.BytesWritten() != 750 {
		t.Errorf("BytesWritten = %d", c.BytesWritten())
	}
	if _, err := c.ReadFile("/f"); err != nil {
		t.Fatal(err)
	}
	if c.BytesRead() != 250 {
		t.Errorf("BytesRead = %d", c.BytesRead())
	}
}

func TestDeleteReclaimsSpace(t *testing.T) {
	c := newTestCluster(t, Config{BlockSize: 100})
	if err := c.WriteFile("/f", make([]byte, 300)); err != nil {
		t.Fatal(err)
	}
	if err := c.Delete("/f"); err != nil {
		t.Fatal(err)
	}
	if u := c.Usage(); u.StoredBytes != 0 || u.Files != 0 {
		t.Errorf("after delete: %+v", u)
	}
	if c.Exists("/f") {
		t.Error("file still exists after delete")
	}
}

func TestList(t *testing.T) {
	c := newTestCluster(t, Config{})
	for _, p := range []string{"/idx/2016/01/a", "/idx/2016/01/b", "/idx/2016/02/a", "/other"} {
		if err := c.WriteFile(p, []byte(p)); err != nil {
			t.Fatal(err)
		}
	}
	got := c.List("/idx/2016/01/")
	if len(got) != 2 || got[0].Path != "/idx/2016/01/a" || got[1].Path != "/idx/2016/01/b" {
		t.Errorf("List = %+v", got)
	}
	if got := c.List("/"); len(got) != 4 {
		t.Errorf("List(/) = %d files", len(got))
	}
}

func TestNodeFailureReadsFailOver(t *testing.T) {
	c := newTestCluster(t, Config{BlockSize: 64, Replication: 3, DataNodes: 4})
	data := make([]byte, 500)
	rand.New(rand.NewSource(2)).Read(data)
	if err := c.WriteFile("/f", data); err != nil {
		t.Fatal(err)
	}
	// Kill two nodes; with replication 3 over 4 nodes every block still has
	// at least one live replica.
	if err := c.KillNode(0); err != nil {
		t.Fatal(err)
	}
	if err := c.KillNode(1); err != nil {
		t.Fatal(err)
	}
	got, err := c.ReadFile("/f")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("failover read mismatch")
	}
}

func TestRereplication(t *testing.T) {
	c := newTestCluster(t, Config{BlockSize: 64, Replication: 3, DataNodes: 4})
	data := make([]byte, 300)
	rand.New(rand.NewSource(3)).Read(data)
	if err := c.WriteFile("/f", data); err != nil {
		t.Fatal(err)
	}
	if err := c.KillNode(2); err != nil {
		t.Fatal(err)
	}
	under := c.UnderReplicated()
	if under == 0 {
		t.Skip("node 2 held no replicas of this small file")
	}
	created, err := c.Rereplicate()
	if err != nil {
		t.Fatal(err)
	}
	if created == 0 {
		t.Error("Rereplicate created no replicas")
	}
	if got := c.UnderReplicated(); got != 0 {
		t.Errorf("still %d under-replicated blocks", got)
	}
	got, err := c.ReadFile("/f")
	if err != nil || !bytes.Equal(got, data) {
		t.Errorf("read after rereplication: %v", err)
	}
}

func TestCorruptBlockDetectedAndFailedOver(t *testing.T) {
	c := newTestCluster(t, Config{BlockSize: 1 << 20, Replication: 3, DataNodes: 4})
	data := []byte("critical telco snapshot payload")
	if err := c.WriteFile("/f", data); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CorruptBlock("/f"); err != nil {
		t.Fatal(err)
	}
	got, err := c.ReadFile("/f")
	if err != nil {
		t.Fatalf("read after corruption: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Error("corrupted replica served to reader")
	}
}

func TestAllReplicasCorruptFailsLoudly(t *testing.T) {
	c := newTestCluster(t, Config{Replication: 1, DataNodes: 1})
	if err := c.WriteFile("/f", []byte("data")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CorruptBlock("/f"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ReadFile("/f"); err == nil {
		t.Error("read of fully corrupted file succeeded")
	}
}

func TestAllNodesDeadWriteFails(t *testing.T) {
	c := newTestCluster(t, Config{DataNodes: 2, Replication: 2})
	_ = c.KillNode(0)
	_ = c.KillNode(1)
	if err := c.WriteFile("/f", []byte("x")); !errors.Is(err, ErrUnavailable) {
		t.Errorf("write err = %v, want ErrUnavailable", err)
	}
	_ = c.ReviveNode(0)
	if err := c.WriteFile("/f", []byte("x")); err != nil {
		t.Errorf("write after revive: %v", err)
	}
}

func TestKillNodeBounds(t *testing.T) {
	c := newTestCluster(t, Config{DataNodes: 2})
	if err := c.KillNode(-1); err == nil {
		t.Error("KillNode(-1) accepted")
	}
	if err := c.ReviveNode(99); err == nil {
		t.Error("ReviveNode(99) accepted")
	}
}

func TestConcurrentWritesAndReads(t *testing.T) {
	c := newTestCluster(t, Config{BlockSize: 256, Replication: 2, DataNodes: 3})
	const n = 24
	var wg sync.WaitGroup
	errs := make(chan error, n*2)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			path := fmt.Sprintf("/c/%03d", i)
			data := bytes.Repeat([]byte{byte(i)}, 700)
			if err := c.WriteFile(path, data); err != nil {
				errs <- err
				return
			}
			got, err := c.ReadFile(path)
			if err != nil {
				errs <- err
				return
			}
			if !bytes.Equal(got, data) {
				errs <- fmt.Errorf("mismatch on %s", path)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if u := c.Usage(); u.Files != n {
		t.Errorf("files = %d, want %d", u.Files, n)
	}
}

func TestConfigDefaults(t *testing.T) {
	c := newTestCluster(t, Config{})
	cfg := c.Config()
	if cfg.BlockSize != 64<<20 || cfg.Replication != 3 || cfg.DataNodes != 4 {
		t.Errorf("defaults = %+v", cfg)
	}
	// Replication clamps to node count.
	c2 := newTestCluster(t, Config{DataNodes: 2, Replication: 5})
	if got := c2.Config().Replication; got != 2 {
		t.Errorf("clamped replication = %d, want 2", got)
	}
}

func TestReadFileRange(t *testing.T) {
	c := newTestCluster(t, Config{BlockSize: 1024, Replication: 2, DataNodes: 3})
	data := make([]byte, 5000)
	rand.New(rand.NewSource(7)).Read(data)
	if err := c.WriteFile("/f", data); err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		name   string
		off, n int64
	}{
		{"inside first block", 10, 100},
		{"whole first block", 0, 1024},
		{"spans two blocks", 1000, 100},
		{"spans three blocks", 900, 2200},
		{"block-aligned start", 2048, 1024},
		{"up to EOF", 4000, 1000},
		{"past EOF truncates", 4500, 5000},
		{"at EOF", 5000, 10},
		{"zero length", 123, 0},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got, err := c.ReadFileRange("/f", tc.off, tc.n)
			if err != nil {
				t.Fatal(err)
			}
			end := tc.off + tc.n
			if end > int64(len(data)) {
				end = int64(len(data))
			}
			want := []byte{}
			if tc.off < int64(len(data)) {
				want = data[tc.off:end]
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("range [%d,+%d): got %d bytes, want %d", tc.off, tc.n, len(got), len(want))
			}
		})
	}
	if _, err := c.ReadFileRange("/f", -1, 10); err == nil {
		t.Error("negative offset accepted")
	}
	if _, err := c.ReadFileRange("/missing", 0, 10); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing file: %v", err)
	}
}

// TestReadFileRangeChargesServedBytes verifies the read accounting charges
// the bytes served to the caller, not the full blocks touched.
func TestReadFileRangeChargesServedBytes(t *testing.T) {
	c := newTestCluster(t, Config{BlockSize: 1024, Replication: 1, DataNodes: 2})
	data := make([]byte, 4096)
	rand.New(rand.NewSource(3)).Read(data)
	if err := c.WriteFile("/f", data); err != nil {
		t.Fatal(err)
	}
	before := c.BytesRead()
	if _, err := c.ReadFileRange("/f", 1000, 100); err != nil {
		t.Fatal(err)
	}
	if got := c.BytesRead() - before; got != 100 {
		t.Errorf("charged %d bytes for a 100-byte range read", got)
	}
}

func TestReadFileRangeReplicaFallback(t *testing.T) {
	c := newTestCluster(t, Config{BlockSize: 1024, Replication: 2, DataNodes: 3})
	data := make([]byte, 3000)
	rand.New(rand.NewSource(11)).Read(data)
	if err := c.WriteFile("/f", data); err != nil {
		t.Fatal(err)
	}
	// Kill one datanode: every block keeps a live replica (replication 2
	// over 3 nodes), so ranged reads must fail over and still verify.
	if err := c.KillNode(0); err != nil {
		t.Fatal(err)
	}
	got, err := c.ReadFileRange("/f", 900, 1500)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data[900:2400]) {
		t.Fatal("range read after datanode kill returned wrong bytes")
	}
	// Kill the rest: no live replica may remain for some block.
	if err := c.KillNode(1); err != nil {
		t.Fatal(err)
	}
	if err := c.KillNode(2); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ReadFileRange("/f", 0, 100); err == nil {
		t.Error("range read with all datanodes dead succeeded")
	}
}

func TestOpenReaderAt(t *testing.T) {
	c := newTestCluster(t, Config{BlockSize: 512, Replication: 2, DataNodes: 3})
	data := make([]byte, 2000)
	rand.New(rand.NewSource(5)).Read(data)
	if err := c.WriteFile("/f", data); err != nil {
		t.Fatal(err)
	}
	f, err := c.Open("/f")
	if err != nil {
		t.Fatal(err)
	}
	if f.Size() != 2000 || f.Path() != "/f" {
		t.Fatalf("handle = %q size %d", f.Path(), f.Size())
	}
	buf := make([]byte, 700)
	if _, err := f.ReadAt(buf, 400); err != nil { // spans blocks 0..2
		t.Fatal(err)
	}
	if !bytes.Equal(buf, data[400:1100]) {
		t.Fatal("ReadAt returned wrong bytes")
	}
	// Tail read past EOF: partial bytes + io.EOF.
	n, err := f.ReadAt(buf, 1800)
	if n != 200 || err == nil {
		t.Fatalf("ReadAt past EOF: n=%d err=%v", n, err)
	}
	if !bytes.Equal(buf[:n], data[1800:]) {
		t.Fatal("tail ReadAt returned wrong bytes")
	}
	if _, err := c.Open("/missing"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Open missing: %v", err)
	}
}
