// Package dfs implements the replicated big-data file system substrate that
// SPATE's storage layer writes to — a single-process stand-in for the HDFS
// v2.5.2 deployment of the paper's testbed (64 MB blocks, replication 3,
// 4 data nodes).
//
// The cluster keeps namenode metadata in memory and stores block replicas
// as checksummed files under per-datanode directories on the local disk, so
// scan and decompression costs in benchmarks are real I/O. It supports the
// failure modes the paper's availability argument rests on: datanode loss
// with re-replication from surviving replicas, and checksum-verified reads
// that fail over between replicas on corruption.
package dfs

import (
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"spate/internal/obs"
)

// Config parameterizes a cluster. The zero value takes the paper's testbed
// defaults.
type Config struct {
	// BlockSize is the maximum bytes per block (default 64 MB).
	BlockSize int64
	// Replication is the number of replicas per block (default 3, clamped
	// to the datanode count).
	Replication int
	// DataNodes is the number of datanodes (default 4).
	DataNodes int
	// WriteMBps throttles datanode writes to the given per-replica
	// throughput, modeling slow storage (the paper's testbed used 7.2K RPM
	// RAID-5 disks behind a virtualized IaaS). 0 disables the model and
	// writes run at local-disk speed.
	WriteMBps float64
	// ReadMBps likewise throttles block reads. 0 disables.
	ReadMBps float64
	// Obs selects the metrics registry the cluster reports into
	// (default obs.Default; obs.NewNoop() disables accounting).
	Obs *obs.Registry
}

func (c Config) withDefaults() Config {
	if c.BlockSize <= 0 {
		c.BlockSize = 64 << 20
	}
	if c.Replication <= 0 {
		c.Replication = 3
	}
	if c.DataNodes <= 0 {
		c.DataNodes = 4
	}
	if c.Replication > c.DataNodes {
		c.Replication = c.DataNodes
	}
	return c
}

// Sentinel errors surfaced by cluster operations.
var (
	ErrNotFound    = errors.New("dfs: file not found")
	ErrExists      = errors.New("dfs: file exists")
	ErrUnavailable = errors.New("dfs: no available replica")
)

type blockMeta struct {
	id       int64
	size     int64
	checksum uint32
	replicas []int // datanode indices holding the block
}

type fileMeta struct {
	path   string
	size   int64
	blocks []blockMeta
}

type dataNode struct {
	dir   string
	alive bool
	used  int64 // bytes stored on this node
}

// Cluster is an in-process replicated file system. All methods are safe
// for concurrent use.
type Cluster struct {
	cfg  Config
	root string

	mu      sync.RWMutex
	files   map[string]*fileMeta
	nodes   []*dataNode
	nextBlk int64
	nextPut int // round-robin placement cursor

	// scrubHook, when set, is consulted once per replica verification
	// during Scrub — fault injection for tests. Guarded by mu.
	scrubHook func(path string, block int64, node int) error

	bytesRead    atomic.Int64
	bytesWritten atomic.Int64

	met clusterMetrics
}

// clusterMetrics holds the cluster's pre-resolved obs series; per-op
// updates are lock-free atomic adds.
type clusterMetrics struct {
	opSec     map[string]*obs.Histogram // write|read|delete|rereplicate
	readB     *obs.Counter
	writtenB  *obs.Counter
	opErrors  *obs.Counter
	replicaFO *obs.Counter // replica failovers during reads
}

func newClusterMetrics(r *obs.Registry) clusterMetrics {
	m := clusterMetrics{opSec: make(map[string]*obs.Histogram)}
	for _, op := range []string{"write", "read", "delete", "rereplicate", "scrub"} {
		m.opSec[op] = r.Histogram("spate_dfs_op_seconds",
			"DFS operation latency by op.", nil, "op", op)
	}
	m.readB = r.Counter("spate_dfs_read_bytes_total", "Bytes served to DFS readers.")
	m.writtenB = r.Counter("spate_dfs_written_bytes_total", "Bytes written to datanodes including replication copies.")
	m.opErrors = r.Counter("spate_dfs_op_errors_total", "Failed DFS operations.")
	m.replicaFO = r.Counter("spate_dfs_replica_failovers_total", "Reads that skipped a dead or corrupt replica.")
	return m
}

// NewCluster creates a cluster rooted at dir (created if absent). A
// directory that carries a previous cluster's fsimage recovers its file
// table, so restarts see every stored file.
func NewCluster(dir string, cfg Config) (*Cluster, error) {
	cfg = cfg.withDefaults()
	c := &Cluster{cfg: cfg, root: dir, files: make(map[string]*fileMeta)}
	for i := 0; i < cfg.DataNodes; i++ {
		nd := filepath.Join(dir, fmt.Sprintf("dn%02d", i))
		if err := os.MkdirAll(nd, 0o755); err != nil {
			return nil, fmt.Errorf("dfs: create datanode dir: %w", err)
		}
		c.nodes = append(c.nodes, &dataNode{dir: nd, alive: true})
	}
	if err := c.loadImage(); err != nil {
		return nil, err
	}
	reg := cfg.Obs
	if reg == nil {
		reg = obs.Default
	}
	c.met = newClusterMetrics(reg)
	// Scrape-time gauges: the newest cluster registered under a name owns
	// its series (relevant only when several clusters share one registry).
	reg.GaugeFunc("spate_dfs_under_replicated_blocks",
		"Blocks with fewer live replicas than the target.",
		func() float64 { return float64(c.UnderReplicated()) })
	reg.GaugeFunc("spate_dfs_live_nodes", "Datanodes currently alive.",
		func() float64 { return float64(c.Usage().LiveNodes) })
	reg.GaugeFunc("spate_dfs_stored_bytes", "Bytes on datanode disks including replication.",
		func() float64 { return float64(c.Usage().StoredBytes) })
	reg.GaugeFunc("spate_dfs_files", "Files in the namenode table.",
		func() float64 { return float64(c.Usage().Files) })
	return c, nil
}

// Config returns the cluster configuration (after defaulting).
func (c *Cluster) Config() Config { return c.cfg }

func blockFile(dir string, id int64) string {
	return filepath.Join(dir, fmt.Sprintf("blk_%012d", id))
}

// throttle sleeps to cap an n-byte transfer at mbps MB/s (0 = unlimited).
func throttle(mbps float64, n int) {
	if mbps <= 0 || n == 0 {
		return
	}
	time.Sleep(time.Duration(float64(n) / (mbps * (1 << 20)) * float64(time.Second)))
}

// WriteFile stores data under path, splitting it into replicated blocks.
// It fails if the path already exists (DFS files are write-once, like HDFS).
func (c *Cluster) WriteFile(path string, data []byte) error {
	t0 := time.Now()
	defer c.met.opSec["write"].ObserveSince(t0)
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.files[path]; ok {
		c.met.opErrors.Inc()
		return fmt.Errorf("%q: %w", path, ErrExists)
	}
	fm := &fileMeta{path: path, size: int64(len(data))}
	for off := int64(0); off < int64(len(data)) || (off == 0 && len(data) == 0); off += c.cfg.BlockSize {
		end := off + c.cfg.BlockSize
		if end > int64(len(data)) {
			end = int64(len(data))
		}
		chunk := data[off:end]
		bm, err := c.placeBlockLocked(chunk)
		if err != nil {
			c.rollbackLocked(fm)
			c.met.opErrors.Inc()
			return err
		}
		fm.blocks = append(fm.blocks, bm)
		if len(data) == 0 {
			break
		}
	}
	c.files[path] = fm
	return c.saveImageLocked()
}

// placeBlockLocked writes one block to Replication live datanodes.
func (c *Cluster) placeBlockLocked(chunk []byte) (blockMeta, error) {
	bm := blockMeta{id: c.nextBlk, size: int64(len(chunk)), checksum: crc32.ChecksumIEEE(chunk)}
	c.nextBlk++
	placed := 0
	for probe := 0; probe < len(c.nodes) && placed < c.cfg.Replication; probe++ {
		i := (c.nextPut + probe) % len(c.nodes)
		n := c.nodes[i]
		if !n.alive {
			continue
		}
		if err := os.WriteFile(blockFile(n.dir, bm.id), chunk, 0o644); err != nil {
			return bm, fmt.Errorf("dfs: write block: %w", err)
		}
		throttle(c.cfg.WriteMBps, len(chunk))
		n.used += bm.size
		bm.replicas = append(bm.replicas, i)
		placed++
	}
	c.nextPut = (c.nextPut + 1) % len(c.nodes)
	if placed == 0 {
		return bm, fmt.Errorf("dfs: place block: %w", ErrUnavailable)
	}
	c.bytesWritten.Add(int64(placed) * bm.size)
	c.met.writtenB.Add(int64(placed) * bm.size)
	return bm, nil
}

func (c *Cluster) rollbackLocked(fm *fileMeta) {
	for _, bm := range fm.blocks {
		c.removeBlockLocked(bm)
	}
}

func (c *Cluster) removeBlockLocked(bm blockMeta) {
	for _, i := range bm.replicas {
		n := c.nodes[i]
		if err := os.Remove(blockFile(n.dir, bm.id)); err == nil {
			n.used -= bm.size
		}
	}
}

// ReadFile returns the contents of path, verifying block checksums and
// failing over between replicas.
func (c *Cluster) ReadFile(path string) ([]byte, error) {
	t0 := time.Now()
	defer c.met.opSec["read"].ObserveSince(t0)
	c.mu.RLock()
	fm, ok := c.files[path]
	if !ok {
		c.mu.RUnlock()
		c.met.opErrors.Inc()
		return nil, fmt.Errorf("%q: %w", path, ErrNotFound)
	}
	blocks := make([]blockMeta, len(fm.blocks))
	copy(blocks, fm.blocks)
	size := fm.size
	c.mu.RUnlock()

	out := make([]byte, 0, size)
	for _, bm := range blocks {
		chunk, err := c.readBlock(bm)
		if err != nil {
			c.met.opErrors.Inc()
			return nil, fmt.Errorf("dfs: %q block %d: %w", path, bm.id, err)
		}
		out = append(out, chunk...)
	}
	c.bytesRead.Add(int64(len(out)))
	c.met.readB.Add(int64(len(out)))
	return out, nil
}

// ReadFileRange returns n bytes of path starting at offset off, touching
// only the blocks the range covers. Every touched block is read in full
// from a replica and checksum-verified (the block is the checksum unit, as
// in HDFS positional reads), but the throughput model and the cluster's
// read accounting are charged only for the bytes actually served — a
// footer probe over a multi-gigabyte leaf costs a few block verifications,
// not a whole-file transfer. Reads past end-of-file are truncated; a read
// starting at or past EOF returns an empty slice.
func (c *Cluster) ReadFileRange(path string, off, n int64) ([]byte, error) {
	t0 := time.Now()
	defer c.met.opSec["read"].ObserveSince(t0)
	if off < 0 || n < 0 {
		c.met.opErrors.Inc()
		return nil, fmt.Errorf("dfs: negative range %d+%d on %q", off, n, path)
	}
	c.mu.RLock()
	fm, ok := c.files[path]
	if !ok {
		c.mu.RUnlock()
		c.met.opErrors.Inc()
		return nil, fmt.Errorf("%q: %w", path, ErrNotFound)
	}
	blocks := make([]blockMeta, len(fm.blocks))
	copy(blocks, fm.blocks)
	size := fm.size
	c.mu.RUnlock()

	if off >= size {
		return nil, nil
	}
	if off+n > size {
		n = size - off
	}
	out := make([]byte, 0, n)
	pos := int64(0)
	for _, bm := range blocks {
		if pos >= off+n {
			break
		}
		if pos+bm.size > off {
			chunk, err := c.readBlockRange(bm, max64(off-pos, 0), min64(off+n-pos, bm.size))
			if err != nil {
				c.met.opErrors.Inc()
				return nil, fmt.Errorf("dfs: %q block %d: %w", path, bm.id, err)
			}
			out = append(out, chunk...)
		}
		pos += bm.size
	}
	c.bytesRead.Add(int64(len(out)))
	c.met.readB.Add(int64(len(out)))
	return out, nil
}

// File is a read-only handle over a stored file, implementing io.ReaderAt
// for seekable consumers (the segment leaf reader). The handle captures
// the file's block table at Open time; DFS files are write-once, so the
// view never goes stale.
type File struct {
	c    *Cluster
	path string
	size int64
}

// Open returns a ReaderAt-backed handle for path.
func (c *Cluster) Open(path string) (*File, error) {
	c.mu.RLock()
	fm, ok := c.files[path]
	if !ok {
		c.mu.RUnlock()
		return nil, fmt.Errorf("%q: %w", path, ErrNotFound)
	}
	size := fm.size
	c.mu.RUnlock()
	return &File{c: c, path: path, size: size}, nil
}

// Size returns the file's length in bytes.
func (f *File) Size() int64 { return f.size }

// Path returns the file's DFS path.
func (f *File) Path() string { return f.path }

// ReadAt implements io.ReaderAt with checksummed partial reads. A read
// reaching past end-of-file returns the available bytes and io.EOF, per
// the io.ReaderAt contract.
func (f *File) ReadAt(p []byte, off int64) (int, error) {
	data, err := f.c.ReadFileRange(f.path, off, int64(len(p)))
	if err != nil {
		return 0, err
	}
	n := copy(p, data)
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// readBlockRange serves bytes [from, to) of one block: the whole block is
// fetched from a live replica and verified, then the requested slice is
// returned with the throughput model charged for the slice alone.
func (c *Cluster) readBlockRange(bm blockMeta, from, to int64) ([]byte, error) {
	c.mu.RLock()
	replicas := append([]int(nil), bm.replicas...)
	c.mu.RUnlock()
	var lastErr error = ErrUnavailable
	for _, i := range replicas {
		c.mu.RLock()
		n := c.nodes[i]
		alive := n.alive
		c.mu.RUnlock()
		if !alive {
			c.met.replicaFO.Inc()
			continue
		}
		chunk, err := os.ReadFile(blockFile(n.dir, bm.id))
		if err != nil {
			lastErr = err
			c.met.replicaFO.Inc()
			continue
		}
		if crc32.ChecksumIEEE(chunk) != bm.checksum {
			lastErr = fmt.Errorf("dfs: checksum mismatch on dn%02d", i)
			c.met.replicaFO.Inc()
			continue
		}
		throttle(c.cfg.ReadMBps, int(to-from))
		return chunk[from:to], nil
	}
	return nil, lastErr
}

// readBlock tries each replica until one passes the checksum.
func (c *Cluster) readBlock(bm blockMeta) ([]byte, error) {
	c.mu.RLock()
	replicas := append([]int(nil), bm.replicas...)
	c.mu.RUnlock()
	var lastErr error = ErrUnavailable
	for _, i := range replicas {
		c.mu.RLock()
		n := c.nodes[i]
		alive := n.alive
		c.mu.RUnlock()
		if !alive {
			c.met.replicaFO.Inc()
			continue
		}
		chunk, err := os.ReadFile(blockFile(n.dir, bm.id))
		if err != nil {
			lastErr = err
			c.met.replicaFO.Inc()
			continue
		}
		if crc32.ChecksumIEEE(chunk) != bm.checksum {
			lastErr = fmt.Errorf("dfs: checksum mismatch on dn%02d", i)
			c.met.replicaFO.Inc()
			continue
		}
		throttle(c.cfg.ReadMBps, len(chunk))
		return chunk, nil
	}
	return nil, lastErr
}

// Delete removes a file and its block replicas.
func (c *Cluster) Delete(path string) error {
	t0 := time.Now()
	defer c.met.opSec["delete"].ObserveSince(t0)
	c.mu.Lock()
	defer c.mu.Unlock()
	fm, ok := c.files[path]
	if !ok {
		c.met.opErrors.Inc()
		return fmt.Errorf("%q: %w", path, ErrNotFound)
	}
	c.rollbackLocked(fm)
	delete(c.files, path)
	return c.saveImageLocked()
}

// FileInfo describes one stored file.
type FileInfo struct {
	Path   string
	Size   int64
	Blocks int
}

// Stat returns metadata for path.
func (c *Cluster) Stat(path string) (FileInfo, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	fm, ok := c.files[path]
	if !ok {
		return FileInfo{}, fmt.Errorf("%q: %w", path, ErrNotFound)
	}
	return FileInfo{Path: fm.path, Size: fm.size, Blocks: len(fm.blocks)}, nil
}

// Exists reports whether path is stored.
func (c *Cluster) Exists(path string) bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	_, ok := c.files[path]
	return ok
}

// List returns files whose path starts with prefix, sorted by path.
func (c *Cluster) List(prefix string) []FileInfo {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var out []FileInfo
	for p, fm := range c.files {
		if strings.HasPrefix(p, prefix) {
			out = append(out, FileInfo{Path: fm.path, Size: fm.size, Blocks: len(fm.blocks)})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

// Usage summarizes cluster storage.
type Usage struct {
	// LogicalBytes is the sum of file sizes (pre-replication).
	LogicalBytes int64
	// StoredBytes is the total bytes on datanode disks (post-replication) —
	// the "disk space for the whole distributed system" metric of Fig. 8/10.
	StoredBytes int64
	Files       int
	LiveNodes   int
	// UnderReplicatedBlocks counts blocks with fewer live replicas than
	// the target — the scrubber's effectiveness gauge.
	UnderReplicatedBlocks int
}

// Usage returns current storage statistics.
func (c *Cluster) Usage() Usage {
	c.mu.RLock()
	defer c.mu.RUnlock()
	u := Usage{Files: len(c.files)}
	for _, fm := range c.files {
		u.LogicalBytes += fm.size
		for _, bm := range fm.blocks {
			live := 0
			for _, r := range bm.replicas {
				if c.nodes[r].alive {
					live++
				}
			}
			if live < c.cfg.Replication {
				u.UnderReplicatedBlocks++
			}
		}
	}
	for _, n := range c.nodes {
		u.StoredBytes += n.used
		if n.alive {
			u.LiveNodes++
		}
	}
	return u
}

// BytesRead returns the cumulative bytes served to readers.
func (c *Cluster) BytesRead() int64 { return c.bytesRead.Load() }

// BytesWritten returns the cumulative bytes written to datanodes
// (including replication copies).
func (c *Cluster) BytesWritten() int64 { return c.bytesWritten.Load() }

// KillNode marks a datanode dead, simulating a machine failure. Its block
// files remain on disk but are never read while dead.
func (c *Cluster) KillNode(i int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if i < 0 || i >= len(c.nodes) {
		return fmt.Errorf("dfs: no datanode %d", i)
	}
	c.nodes[i].alive = false
	return nil
}

// ReviveNode brings a datanode back. Blocks it held count again.
func (c *Cluster) ReviveNode(i int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if i < 0 || i >= len(c.nodes) {
		return fmt.Errorf("dfs: no datanode %d", i)
	}
	c.nodes[i].alive = true
	return nil
}

// CorruptBlock flips bytes of one replica of the first block of path —
// failure injection for checksum tests. It returns the damaged node index.
func (c *Cluster) CorruptBlock(path string) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	fm, ok := c.files[path]
	if !ok || len(fm.blocks) == 0 {
		return -1, fmt.Errorf("%q: %w", path, ErrNotFound)
	}
	bm := fm.blocks[0]
	if len(bm.replicas) == 0 {
		return -1, ErrUnavailable
	}
	i := bm.replicas[0]
	fn := blockFile(c.nodes[i].dir, bm.id)
	data, err := os.ReadFile(fn)
	if err != nil {
		return -1, err
	}
	if len(data) == 0 {
		data = []byte{0xFF}
	} else {
		data[0] ^= 0xFF
	}
	return i, os.WriteFile(fn, data, 0o644)
}

// Rereplicate restores the replication factor of under-replicated blocks
// (e.g. after KillNode) by copying from surviving replicas to other live
// nodes. It returns the number of new replicas created.
func (c *Cluster) Rereplicate() (int, error) {
	t0 := time.Now()
	defer c.met.opSec["rereplicate"].ObserveSince(t0)
	c.mu.Lock()
	defer c.mu.Unlock()
	created, _, err := c.rereplicateLocked()
	if err != nil {
		return created, err
	}
	if created > 0 {
		if err := c.saveImageLocked(); err != nil {
			return created, err
		}
	}
	return created, nil
}

// rereplicateLocked restores the replication factor of under-replicated
// blocks, returning the replicas created and their total bytes. Callers
// hold c.mu and persist the fsimage themselves.
func (c *Cluster) rereplicateLocked() (int, int64, error) {
	created := 0
	var bytes int64
	for _, fm := range c.files {
		for bi := range fm.blocks {
			bm := &fm.blocks[bi]
			live := 0
			onNode := make(map[int]bool)
			for _, r := range bm.replicas {
				onNode[r] = true
				if c.nodes[r].alive {
					live++
				}
			}
			if live >= c.cfg.Replication || live == 0 {
				continue
			}
			// Read from a live replica.
			var chunk []byte
			for _, r := range bm.replicas {
				if !c.nodes[r].alive {
					continue
				}
				data, err := os.ReadFile(blockFile(c.nodes[r].dir, bm.id))
				if err == nil && crc32.ChecksumIEEE(data) == bm.checksum {
					chunk = data
					break
				}
			}
			if chunk == nil && bm.size > 0 {
				return created, bytes, fmt.Errorf("dfs: block %d unrecoverable: %w", bm.id, ErrUnavailable)
			}
			if chunk == nil {
				chunk = []byte{}
			}
			for i, n := range c.nodes {
				if live >= c.cfg.Replication {
					break
				}
				if !n.alive || onNode[i] {
					continue
				}
				if err := os.WriteFile(blockFile(n.dir, bm.id), chunk, 0o644); err != nil {
					return created, bytes, fmt.Errorf("dfs: rereplicate: %w", err)
				}
				n.used += bm.size
				bm.replicas = append(bm.replicas, i)
				onNode[i] = true
				live++
				created++
				bytes += bm.size
				c.bytesWritten.Add(bm.size)
				c.met.writtenB.Add(bm.size)
			}
		}
	}
	return created, bytes, nil
}

// UnderReplicated counts blocks with fewer live replicas than the target.
func (c *Cluster) UnderReplicated() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	n := 0
	for _, fm := range c.files {
		for _, bm := range fm.blocks {
			live := 0
			for _, r := range bm.replicas {
				if c.nodes[r].alive {
					live++
				}
			}
			if live < c.cfg.Replication {
				n++
			}
		}
	}
	return n
}
