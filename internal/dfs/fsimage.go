package dfs

// Namenode metadata persistence: the cluster journals its file table to an
// "fsimage" file under the cluster root (the HDFS namenode's on-disk image,
// simplified to a full rewrite per mutation — metadata is tiny relative to
// block data). NewCluster loads an existing image, so a process restart
// over the same directory recovers every file; combined with the SPATE
// engine's own index recovery this gives full store durability.

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"os"
	"path/filepath"
)

const fsimageName = "fsimage"

// imageFile is the serialized form of fileMeta.
type imageFile struct {
	Path   string
	Size   int64
	Blocks []imageBlock
}

type imageBlock struct {
	ID       int64
	Size     int64
	Checksum uint32
	Replicas []int
}

type image struct {
	Files   []imageFile
	NextBlk int64
	NextPut int
}

// saveImageLocked journals the namenode state. Callers hold c.mu.
func (c *Cluster) saveImageLocked() error {
	img := image{NextBlk: c.nextBlk, NextPut: c.nextPut}
	for _, fm := range c.files {
		f := imageFile{Path: fm.path, Size: fm.size}
		for _, bm := range fm.blocks {
			f.Blocks = append(f.Blocks, imageBlock{
				ID: bm.id, Size: bm.size, Checksum: bm.checksum,
				Replicas: append([]int(nil), bm.replicas...),
			})
		}
		img.Files = append(img.Files, f)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(img); err != nil {
		return fmt.Errorf("dfs: encode fsimage: %w", err)
	}
	tmp := filepath.Join(c.root, fsimageName+".tmp")
	if err := os.WriteFile(tmp, buf.Bytes(), 0o644); err != nil {
		return fmt.Errorf("dfs: write fsimage: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(c.root, fsimageName)); err != nil {
		return fmt.Errorf("dfs: install fsimage: %w", err)
	}
	return nil
}

// loadImage restores namenode state from a previous run, if present.
func (c *Cluster) loadImage() error {
	data, err := os.ReadFile(filepath.Join(c.root, fsimageName))
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("dfs: read fsimage: %w", err)
	}
	var img image
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&img); err != nil {
		return fmt.Errorf("dfs: decode fsimage: %w", err)
	}
	c.nextBlk = img.NextBlk
	c.nextPut = img.NextPut
	for _, f := range img.Files {
		fm := &fileMeta{path: f.Path, size: f.Size}
		for _, b := range f.Blocks {
			replicas := make([]int, 0, len(b.Replicas))
			for _, r := range b.Replicas {
				if r >= 0 && r < len(c.nodes) {
					replicas = append(replicas, r)
					c.nodes[r].used += b.Size
				}
			}
			fm.blocks = append(fm.blocks, blockMeta{
				id: b.ID, size: b.Size, checksum: b.Checksum, replicas: replicas,
			})
		}
		c.files[f.Path] = fm
	}
	return nil
}
