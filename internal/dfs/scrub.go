package dfs

import (
	"fmt"
	"hash/crc32"
	"os"
	"time"
)

// The scrubber is the cluster's proactive integrity pass. Normal reads
// already fail over past a corrupt replica, but nothing repairs it — the
// damage sits latent until the healthy copies are the ones that fail. A
// scrub walks every block, verifies each replica on a live datanode
// against the block checksum, quarantines the ones that fail (the block
// file moves aside with a ".corrupt" suffix, like HDFS's corrupt-replica
// directory), and restores the replication factor from surviving copies.

// ScrubResult summarizes one scrub pass.
type ScrubResult struct {
	BlocksChecked   int
	ReplicasChecked int
	// CorruptReplicas failed their checksum (or the injected fault hook);
	// MissingReplicas were listed in block metadata but absent on disk.
	// Both are quarantined.
	CorruptReplicas int
	MissingReplicas int
	// ReplicasRestored counts new copies written to restore replication;
	// BytesRepaired is their total size.
	ReplicasRestored int
	BytesRepaired    int64
	// UnrecoverableBlocks have no healthy live replica left — their data
	// is lost until a dead node holding a copy revives.
	UnrecoverableBlocks int
}

// SetScrubHook installs a fault-injection hook consulted once per replica
// verification (tests only). A non-nil error makes the scrubber treat the
// replica as unreadable even if its bytes are intact. Pass nil to remove.
func (c *Cluster) SetScrubHook(fn func(path string, block int64, node int) error) {
	c.mu.Lock()
	c.scrubHook = fn
	c.mu.Unlock()
}

// badReplica is one replica the verify phase flagged.
type badReplica struct {
	path    string
	blockID int64
	node    int
	missing bool
}

// Scrub verifies every replica on live datanodes, quarantines corrupt or
// missing ones, and re-replicates to restore the replication factor. The
// verify phase reads block files without the cluster lock (concurrent
// writes and deletes stay unblocked); flagged replicas are re-verified
// under the lock before quarantine so a file deleted or repaired in the
// meantime is left alone.
func (c *Cluster) Scrub() (ScrubResult, error) {
	t0 := time.Now()
	defer c.met.opSec["scrub"].ObserveSince(t0)
	var res ScrubResult

	// Snapshot the block table and node state.
	type repl struct {
		path    string
		blockID int64
		node    int
		dir     string
		sum     uint32
	}
	c.mu.RLock()
	hook := c.scrubHook
	var work []repl
	for path, fm := range c.files {
		for _, bm := range fm.blocks {
			res.BlocksChecked++
			for _, r := range bm.replicas {
				if !c.nodes[r].alive {
					continue
				}
				work = append(work, repl{path: path, blockID: bm.id, node: r,
					dir: c.nodes[r].dir, sum: bm.checksum})
			}
		}
	}
	c.mu.RUnlock()

	// Verify without the lock.
	var bad []badReplica
	for _, w := range work {
		res.ReplicasChecked++
		if hook != nil {
			if err := hook(w.path, w.blockID, w.node); err != nil {
				bad = append(bad, badReplica{path: w.path, blockID: w.blockID, node: w.node})
				continue
			}
		}
		data, err := os.ReadFile(blockFile(w.dir, w.blockID))
		if err != nil {
			bad = append(bad, badReplica{path: w.path, blockID: w.blockID, node: w.node, missing: true})
			continue
		}
		if crc32.ChecksumIEEE(data) != w.sum {
			bad = append(bad, badReplica{path: w.path, blockID: w.blockID, node: w.node})
		}
	}

	// Quarantine and repair under one lock acquisition.
	c.mu.Lock()
	defer c.mu.Unlock()
	dirty := false
	for _, b := range bad {
		fm, ok := c.files[b.path]
		if !ok {
			continue // file deleted since the snapshot
		}
		for bi := range fm.blocks {
			bm := &fm.blocks[bi]
			if bm.id != b.blockID {
				continue
			}
			at := -1
			for ri, r := range bm.replicas {
				if r == b.node {
					at = ri
					break
				}
			}
			if at < 0 {
				break // replica already dropped
			}
			// Re-verify: the replica may have been replaced since.
			fn := blockFile(c.nodes[b.node].dir, bm.id)
			stillBad := false
			missing := false
			if c.scrubHook != nil && c.scrubHook(b.path, bm.id, b.node) != nil {
				stillBad = true
			} else if data, err := os.ReadFile(fn); err != nil {
				stillBad, missing = true, true
			} else if crc32.ChecksumIEEE(data) != bm.checksum {
				stillBad = true
			}
			if !stillBad {
				break
			}
			if missing {
				res.MissingReplicas++
			} else {
				res.CorruptReplicas++
				// Quarantine the bytes for post-mortems rather than
				// deleting them outright.
				if err := os.Rename(fn, fn+".corrupt"); err != nil {
					_ = os.Remove(fn)
				}
			}
			bm.replicas = append(bm.replicas[:at], bm.replicas[at+1:]...)
			c.nodes[b.node].used -= bm.size
			dirty = true
			break
		}
	}

	created, bytes, err := c.rereplicateLocked()
	res.ReplicasRestored = created
	res.BytesRepaired = bytes
	if created > 0 {
		dirty = true
	}

	// Count blocks left with no healthy live replica.
	for _, fm := range c.files {
		for _, bm := range fm.blocks {
			if bm.size == 0 {
				continue
			}
			live := 0
			for _, r := range bm.replicas {
				if c.nodes[r].alive {
					live++
				}
			}
			if live == 0 {
				res.UnrecoverableBlocks++
			}
		}
	}

	if dirty {
		if serr := c.saveImageLocked(); serr != nil && err == nil {
			err = serr
		}
	}
	if err != nil {
		return res, fmt.Errorf("dfs: scrub: %w", err)
	}
	return res, nil
}
