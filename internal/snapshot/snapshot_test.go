package snapshot

import (
	"strings"
	"testing"
	"time"

	"spate/internal/gen"
	"spate/internal/telco"
)

func TestSnapshotTables(t *testing.T) {
	e := telco.EpochOf(time.Date(2016, 1, 22, 15, 30, 0, 0, time.UTC))
	s := New(e)
	cfg := gen.DefaultConfig(0.005)
	cfg.Antennas = 10
	cfg.Users = 100
	cfg.CDRPerEpoch = 50
	g := gen.New(cfg)
	s.Add(g.CDRTable(e))
	s.Add(g.NMSTable(e))

	names := s.TableNames()
	if len(names) != 2 || names[0] != "CDR" || names[1] != "NMS" {
		t.Fatalf("TableNames = %v", names)
	}
	if s.Rows() != s.Table("CDR").Len()+s.Table("NMS").Len() {
		t.Error("Rows() mismatch")
	}
	if s.Table("CELL") != nil {
		t.Error("missing table should be nil")
	}
}

func TestAddDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate Add did not panic")
		}
	}()
	s := New(0)
	s.Add(telco.NewTable(telco.CDRSchema))
	s.Add(telco.NewTable(telco.CDRSchema))
}

func TestEncodeDecodeTable(t *testing.T) {
	e := telco.EpochOf(time.Date(2016, 1, 22, 15, 30, 0, 0, time.UTC))
	s := New(e)
	cfg := gen.DefaultConfig(0.005)
	cfg.Antennas = 8
	cfg.Users = 50
	cfg.CDRPerEpoch = 30
	g := gen.New(cfg)
	orig := g.CDRTable(e)
	s.Add(orig)

	data, err := s.EncodeTable("CDR")
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeTable("CDR", data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != orig.Len() {
		t.Fatalf("decoded %d rows, want %d", got.Len(), orig.Len())
	}
	for i := range got.Rows {
		for j := range got.Rows[i] {
			want := orig.Rows[i][j]
			if want.Kind() == telco.KindString && want.Str() == "" {
				want = telco.Null
			}
			if !got.Rows[i][j].Equal(want) {
				t.Fatalf("row %d field %d: %v != %v", i, j, got.Rows[i][j], want)
			}
		}
	}
	if _, err := s.EncodeTable("NOPE"); err == nil {
		t.Error("EncodeTable(NOPE) succeeded")
	}
	if _, err := DecodeTable("NOPE", nil); err == nil {
		t.Error("DecodeTable(NOPE) succeeded")
	}
}

func TestDataPathLayout(t *testing.T) {
	e := telco.EpochOf(time.Date(2016, 9, 15, 12, 30, 0, 0, time.UTC))
	p := DataPath(e, "NMS")
	if !strings.HasPrefix(p, "/spate/data/2016/09/15/") || !strings.HasSuffix(p, "/NMS") {
		t.Errorf("DataPath = %q", p)
	}
	if !strings.Contains(p, "201609151230") {
		t.Errorf("DataPath missing epoch stamp: %q", p)
	}
}
