// Package snapshot models the unit of ingestion in SPATE: the batch of
// telco records (one table per source, e.g. CDR and NMS) that arrives at
// the data center every 30-minute epoch as horizontally segmented files
// (paper §II-B), along with the canonical storage paths snapshots occupy on
// the distributed file system.
package snapshot

import (
	"bytes"
	"fmt"
	"sort"

	"spate/internal/telco"
)

// Snapshot is one epoch's worth of arriving telco data.
type Snapshot struct {
	Epoch  telco.Epoch
	tables map[string]*telco.Table
}

// New returns an empty snapshot for epoch e.
func New(e telco.Epoch) *Snapshot {
	return &Snapshot{Epoch: e, tables: make(map[string]*telco.Table)}
}

// Add attaches a table, keyed by its schema name. Adding two tables with
// the same schema name indicates a programming error and panics.
func (s *Snapshot) Add(t *telco.Table) {
	if _, dup := s.tables[t.Schema.Name]; dup {
		panic(fmt.Sprintf("snapshot: duplicate table %q", t.Schema.Name))
	}
	s.tables[t.Schema.Name] = t
}

// Table returns the table with the given schema name, or nil.
func (s *Snapshot) Table(name string) *telco.Table { return s.tables[name] }

// TableNames lists the attached tables in sorted order.
func (s *Snapshot) TableNames() []string {
	names := make([]string, 0, len(s.tables))
	for n := range s.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Rows returns the total record count across tables.
func (s *Snapshot) Rows() int {
	n := 0
	for _, t := range s.tables {
		n += t.Len()
	}
	return n
}

// EncodeTable renders one table in its wire (text) form.
func (s *Snapshot) EncodeTable(name string) ([]byte, error) {
	t, ok := s.tables[name]
	if !ok {
		return nil, fmt.Errorf("snapshot: no table %q", name)
	}
	var buf bytes.Buffer
	if err := t.WriteText(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// DecodeTable parses wire-form bytes back into a table of the named
// canonical schema.
func DecodeTable(name string, data []byte) (*telco.Table, error) {
	schema := telco.SchemaByName(name)
	if schema == nil {
		return nil, fmt.Errorf("snapshot: unknown schema %q", name)
	}
	return telco.ReadTable(schema, bytes.NewReader(data))
}

// DataPath returns the canonical DFS path of one table of one epoch:
// /spate/data/YYYY/MM/DD/<epoch>/<table>. The directory layout mirrors the
// temporal index levels so DFS prefixes align with subtrees.
func DataPath(e telco.Epoch, table string) string {
	t := e.Start()
	return fmt.Sprintf("/spate/data/%04d/%02d/%02d/%s/%s",
		t.Year(), int(t.Month()), t.Day(), e.String(), table)
}
