package bitio

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWriteReadBits(t *testing.T) {
	w := NewWriter(nil)
	w.WriteBits(0b101, 3)
	w.WriteBits(0xff, 8)
	w.WriteBit(0)
	w.WriteBits(0x1234, 16)
	buf := w.Bytes()

	r := NewReader(buf)
	if v, _ := r.ReadBits(3); v != 0b101 {
		t.Errorf("first = %b", v)
	}
	if v, _ := r.ReadBits(8); v != 0xff {
		t.Errorf("second = %x", v)
	}
	if v, _ := r.ReadBit(); v != 0 {
		t.Errorf("third = %d", v)
	}
	if v, _ := r.ReadBits(16); v != 0x1234 {
		t.Errorf("fourth = %x", v)
	}
}

func TestBitRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(200)
		vals := make([]uint64, n)
		widths := make([]uint, n)
		w := NewWriter(nil)
		for i := 0; i < n; i++ {
			widths[i] = 1 + uint(rng.Intn(56))
			vals[i] = rng.Uint64() & ((1 << widths[i]) - 1)
			w.WriteBits(vals[i], widths[i])
		}
		r := NewReader(w.Bytes())
		for i := 0; i < n; i++ {
			got, err := r.ReadBits(widths[i])
			if err != nil {
				t.Fatalf("trial %d read %d: %v", trial, i, err)
			}
			if got != vals[i] {
				t.Fatalf("trial %d value %d: got %x want %x (width %d)", trial, i, got, vals[i], widths[i])
			}
		}
	}
}

func TestReadPastEnd(t *testing.T) {
	r := NewReader([]byte{0xab})
	if _, err := r.ReadBits(16); err != ErrUnexpectedEOF {
		t.Errorf("err = %v, want ErrUnexpectedEOF", err)
	}
}

func TestBitLen(t *testing.T) {
	w := NewWriter(nil)
	w.WriteBits(1, 5)
	if got := w.BitLen(); got != 5 {
		t.Errorf("BitLen = %d, want 5", got)
	}
	w.WriteBits(1, 5)
	if got := w.BitLen(); got != 10 {
		t.Errorf("BitLen = %d, want 10", got)
	}
}

func TestUvarintRoundTrip(t *testing.T) {
	f := func(x uint64) bool {
		buf := AppendUvarint(nil, x)
		got, n := Uvarint(buf)
		return n == len(buf) && got == x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUvarintTruncated(t *testing.T) {
	buf := AppendUvarint(nil, 1<<40)
	if _, n := Uvarint(buf[:len(buf)-1]); n != 0 {
		t.Errorf("truncated varint: n = %d, want 0", n)
	}
	if _, n := Uvarint(nil); n != 0 {
		t.Errorf("empty varint: n = %d, want 0", n)
	}
}

func TestUvarintOverlong(t *testing.T) {
	// 11 continuation bytes is always invalid.
	buf := []byte{0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x01}
	if _, n := Uvarint(buf); n != 0 {
		t.Errorf("overlong varint: n = %d, want 0", n)
	}
}
