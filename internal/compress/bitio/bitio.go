// Package bitio provides MSB-first bit-level readers and writers plus
// variable-length integer helpers shared by the entropy-coding codecs.
package bitio

import (
	"errors"
)

// ErrUnexpectedEOF is returned when a read runs past the end of the input.
var ErrUnexpectedEOF = errors.New("bitio: unexpected end of input")

// Writer accumulates bits MSB-first into a byte slice.
type Writer struct {
	buf  []byte
	cur  uint64
	nCur uint // bits buffered in cur (< 8 after flushes)
}

// NewWriter returns a Writer appending to buf.
func NewWriter(buf []byte) *Writer { return &Writer{buf: buf} }

// WriteBits writes the low n bits of v, MSB-first. n must be <= 56.
func (w *Writer) WriteBits(v uint64, n uint) {
	if n == 0 {
		return
	}
	w.cur = w.cur<<n | v&((1<<n)-1)
	w.nCur += n
	for w.nCur >= 8 {
		w.nCur -= 8
		w.buf = append(w.buf, byte(w.cur>>w.nCur))
	}
}

// WriteBit writes a single bit.
func (w *Writer) WriteBit(b uint) { w.WriteBits(uint64(b), 1) }

// Bytes flushes any partial byte (zero-padded) and returns the buffer.
func (w *Writer) Bytes() []byte {
	if w.nCur > 0 {
		w.buf = append(w.buf, byte(w.cur<<(8-w.nCur)))
		w.nCur = 0
		w.cur = 0
	}
	return w.buf
}

// BitLen returns the total number of bits written so far.
func (w *Writer) BitLen() int { return len(w.buf)*8 + int(w.nCur) }

// Reader consumes bits MSB-first from a byte slice.
type Reader struct {
	buf  []byte
	pos  int
	cur  uint64
	nCur uint
}

// NewReader returns a Reader over buf.
func NewReader(buf []byte) *Reader { return &Reader{buf: buf} }

// ReadBits reads n bits (n <= 56) MSB-first.
func (r *Reader) ReadBits(n uint) (uint64, error) {
	for r.nCur < n {
		if r.pos >= len(r.buf) {
			return 0, ErrUnexpectedEOF
		}
		r.cur = r.cur<<8 | uint64(r.buf[r.pos])
		r.pos++
		r.nCur += 8
	}
	r.nCur -= n
	v := r.cur >> r.nCur & ((1 << n) - 1)
	return v, nil
}

// ReadBit reads one bit.
func (r *Reader) ReadBit() (uint, error) {
	v, err := r.ReadBits(1)
	return uint(v), err
}

// AppendUvarint appends x in unsigned LEB128 form.
func AppendUvarint(dst []byte, x uint64) []byte {
	for x >= 0x80 {
		dst = append(dst, byte(x)|0x80)
		x >>= 7
	}
	return append(dst, byte(x))
}

// Uvarint decodes a LEB128 integer from src, returning the value and the
// number of bytes consumed (0 when src is truncated or overlong).
func Uvarint(src []byte) (uint64, int) {
	var x uint64
	var s uint
	for i, b := range src {
		if i == 10 {
			return 0, 0 // overlong
		}
		if b < 0x80 {
			if i == 9 && b > 1 {
				return 0, 0 // overflow
			}
			return x | uint64(b)<<s, i + 1
		}
		x |= uint64(b&0x7f) << s
		s += 7
	}
	return 0, 0
}
