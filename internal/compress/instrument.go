package compress

import (
	"time"

	"spate/internal/obs"
)

// instrumented wraps a codec with per-codec byte/ratio/latency accounting.
// It reports into the registry under the codec's own name label, so every
// engine sharing a registry aggregates into one per-codec series.
type instrumented struct {
	inner Codec

	cIn, cOut *obs.Counter
	dIn, dOut *obs.Counter
	cSec      *obs.Histogram
	dSec      *obs.Histogram
	ratio     *obs.Gauge
}

// Instrument wraps c so Compress/Decompress record bytes in/out, call
// latency and the cumulative compression ratio under the codec's name.
// A nil or noop registry returns c unchanged (zero overhead), as does an
// already-instrumented codec.
func Instrument(c Codec, r *obs.Registry) Codec {
	if c == nil || r == nil || r.Noop() {
		return c
	}
	if _, ok := c.(*instrumented); ok {
		return c
	}
	name := c.Name()
	return &instrumented{
		inner: c,
		cIn:   r.Counter("spate_compress_in_bytes_total", "Uncompressed bytes fed to Compress.", "codec", name),
		cOut:  r.Counter("spate_compress_out_bytes_total", "Compressed bytes produced by Compress.", "codec", name),
		dIn:   r.Counter("spate_decompress_in_bytes_total", "Compressed bytes fed to Decompress.", "codec", name),
		dOut:  r.Counter("spate_decompress_out_bytes_total", "Bytes restored by Decompress.", "codec", name),
		cSec:  r.Histogram("spate_compress_seconds", "Compress call latency.", nil, "codec", name),
		dSec:  r.Histogram("spate_decompress_seconds", "Decompress call latency.", nil, "codec", name),
		ratio: r.Gauge("spate_compress_ratio", "Cumulative compression ratio |raw|/|compressed| (Table I's rc).", "codec", name),
	}
}

// Unwrap returns the codec beneath instrumentation (or c itself) — for
// callers that switch on the concrete codec type, e.g. dictionary
// training's zstd check.
func Unwrap(c Codec) Codec {
	if w, ok := c.(*instrumented); ok {
		return w.inner
	}
	return c
}

// Name implements Codec.
func (w *instrumented) Name() string { return w.inner.Name() }

// WithEffort implements Effortful by forwarding to the inner codec,
// keeping the same instrumentation series (the effort level is not a
// separate codec). Codecs without effort levels come back unchanged.
func (w *instrumented) WithEffort(level int) Codec {
	e, ok := w.inner.(Effortful)
	if !ok {
		return w
	}
	cp := *w
	cp.inner = e.WithEffort(level)
	return &cp
}

// Compress implements Codec.
func (w *instrumented) Compress(dst, src []byte) []byte {
	t0 := time.Now()
	mark := len(dst)
	out := w.inner.Compress(dst, src)
	w.cSec.ObserveSince(t0)
	w.cIn.Add(int64(len(src)))
	w.cOut.Add(int64(len(out) - mark))
	if o := w.cOut.Value(); o > 0 {
		w.ratio.Set(float64(w.cIn.Value()) / float64(o))
	}
	return out
}

// Decompress implements Codec.
func (w *instrumented) Decompress(dst, src []byte) ([]byte, error) {
	t0 := time.Now()
	mark := len(dst)
	out, err := w.inner.Decompress(dst, src)
	w.dSec.ObserveSince(t0)
	w.dIn.Add(int64(len(src)))
	if err == nil {
		w.dOut.Add(int64(len(out) - mark))
	}
	return out, err
}
