// Package compress defines the lossless codec abstraction of SPATE's
// storage layer (paper §IV) and a registry of implementations.
//
// The storage layer's desiderata drive the interface: snapshots are
// compressed once per 30-minute ingestion cycle (compression time barely
// matters) but decompressed on every exploratory query (decompression time
// is paid per query), so codecs expose one-shot buffer-level calls that the
// query path can invoke with zero setup cost.
//
// Four codecs mirror the paper's Table I microbenchmark:
//
//   - "gzip"   — DEFLATE via the standard library (the codec SPATE ships with)
//   - "sevenz" — LZ77 + adaptive binary range coder (LZMA-style: best ratio,
//     slowest compression)
//   - "snappy" — byte-oriented LZ with no entropy stage (fastest, ~half the
//     ratio of the others)
//   - "zstd"   — LZ77 + canonical Huffman with optional dictionary training
//     (modern balance of ratio and speed)
//
// Implementations live in subpackages and self-register; import
// spate/internal/compress/all to load every codec.
package compress

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Codec is a lossless block compressor. Implementations must be safe for
// concurrent use by multiple goroutines.
type Codec interface {
	// Name returns the registry key, e.g. "gzip".
	Name() string
	// Compress appends the compressed form of src to dst and returns the
	// extended slice.
	Compress(dst, src []byte) []byte
	// Decompress appends the original bytes to dst and returns the extended
	// slice. It fails on corrupted or truncated input.
	Decompress(dst, src []byte) ([]byte, error)
}

// Effortful is implemented by codecs that can spend more compression CPU
// in exchange for a better ratio. WithEffort returns a codec producing the
// same stream format (and carrying the same dictionary) at the given
// effort; level 1 is the ingest default, higher levels search harder, and
// levels beyond a codec's maximum clamp. Decompression is identical across
// levels, so a background rewriter can compress at high effort while the
// query path keeps reading through the original codec.
type Effortful interface {
	Codec
	WithEffort(level int) Codec
}

// WithEffort returns c at the given effort level when it supports one, and
// c unchanged otherwise.
func WithEffort(c Codec, level int) Codec {
	if e, ok := c.(Effortful); ok {
		return e.WithEffort(level)
	}
	return c
}

// ErrCorrupt is returned (possibly wrapped) when compressed input is
// malformed or truncated.
var ErrCorrupt = errors.New("compress: corrupt input")

// Corruptf wraps ErrCorrupt with codec-specific detail.
func Corruptf(format string, args ...any) error {
	return fmt.Errorf(format+": %w", append(args, ErrCorrupt)...)
}

var (
	mu       sync.RWMutex
	registry = map[string]Codec{}
)

// Register installs a codec under its name. It panics on duplicates, which
// indicate conflicting init-time registrations.
func Register(c Codec) {
	mu.Lock()
	defer mu.Unlock()
	if _, dup := registry[c.Name()]; dup {
		panic(fmt.Sprintf("compress: duplicate codec %q", c.Name()))
	}
	registry[c.Name()] = c
}

// Lookup returns the codec registered under name.
func Lookup(name string) (Codec, error) {
	mu.RLock()
	defer mu.RUnlock()
	c, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("compress: unknown codec %q (did you import compress/all?)", name)
	}
	return c, nil
}

// Names lists the registered codecs in sorted order.
func Names() []string {
	mu.RLock()
	defer mu.RUnlock()
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Ratio returns the compression ratio rc = |original| / |compressed|,
// the paper's Table I metric. A zero-length compressed size yields 0.
func Ratio(originalSize, compressedSize int) float64 {
	if compressedSize <= 0 {
		return 0
	}
	return float64(originalSize) / float64(compressedSize)
}
