// Package all registers every compression codec with the compress registry.
// Import it for side effects:
//
//	import _ "spate/internal/compress/all"
package all

import (
	_ "spate/internal/compress/gzipc"
	_ "spate/internal/compress/sevenz"
	_ "spate/internal/compress/snap"
	_ "spate/internal/compress/zst"
)
