package compress

import (
	"encoding/binary"
	"strconv"
	"strings"

	"spate/internal/entropy"
)

// Column stream codecs for the SPSG v3 columnar chunk layout. A column
// stream holds one attribute's escaped wire fields for every row of a
// chunk (escaping removes raw '|' and '\n', so fields are newline-safe).
// Three packings cover the entropy spectrum the paper's Figure 4 maps
// out: near-zero-entropy attributes dictionary+run-length encode, monotone
// integer attributes (timestamps, counters) delta encode, and high-entropy
// attributes stay as raw joined text. Packed streams are concatenated and
// the chunk's generic block codec compresses the concatenation once, so
// the codec keeps one shared context (and its trained dictionary) across
// all columns instead of restarting per stream.
const (
	// ColPlain is the generic fallback: the fields joined by '\n', left
	// for the chunk-level block codec.
	ColPlain byte = 0
	// ColDict is a dictionary + run-length encoding for low-cardinality
	// columns: uvarint entry count, length-prefixed entries, then
	// (uvarint entry index, uvarint run length) pairs covering the rows.
	ColDict byte = 1
	// ColDelta is a zigzag-varint delta encoding for columns whose every
	// field is a canonical base-10 integer (timestamps in wire form
	// qualify): the first value, then successive differences.
	ColDelta byte = 2
)

// maxDictEntries caps a dictionary — beyond it the column is not
// low-cardinality and plain encoding wins anyway.
const maxDictEntries = 1 << 12

// ColumnChoice reports which encoding was selected for a column and the
// entropy statistics that drove the choice, for observability.
type ColumnChoice struct {
	Tag         byte
	EntropyBits float64
	Distinct    int
}

// ColumnTagName names a column codec tag for metrics and EXPLAIN output.
func ColumnTagName(tag byte) string {
	switch tag {
	case ColPlain:
		return "plain"
	case ColDict:
		return "dict"
	case ColDelta:
		return "delta"
	}
	return "tag" + strconv.Itoa(int(tag))
}

// ChooseColumn picks the column encoding for one chunk's fields: Shannon
// entropy of the empirical value distribution selects dictionary+RLE for
// low-cardinality columns, canonical-integer columns delta encode, and
// everything else stays on the generic codec.
func ChooseColumn(values []string) ColumnChoice {
	distinct := make(map[string]int, 64)
	for _, v := range values {
		distinct[v]++
		if len(distinct) > maxDictEntries {
			break
		}
	}
	ch := ColumnChoice{Tag: ColPlain, Distinct: len(distinct)}
	if len(distinct) <= maxDictEntries {
		ch.EntropyBits = entropy.OfStrings(values)
	}
	switch {
	case len(distinct) <= maxDictEntries && ch.EntropyBits < 6:
		ch.Tag = ColDict
	case canDelta(values):
		ch.Tag = ColDelta
	}
	return ch
}

// canDelta reports whether every field is a canonical base-10 int64 —
// the exactness condition for delta encoding: FormatInt(ParseInt(v)) == v
// guarantees bit-for-bit reconstruction.
func canDelta(values []string) bool {
	if len(values) == 0 {
		return false
	}
	for _, v := range values {
		i, err := strconv.ParseInt(v, 10, 64)
		if err != nil || strconv.FormatInt(i, 10) != v {
			return false
		}
	}
	return true
}

// EncodeColumn appends the packed form of the column's fields to dst.
// Packing is codec-free: the caller concatenates every column's packed
// stream and block-compresses the chunk once, so dict/RLE and delta only
// pre-shrink what the codec then squeezes with full cross-column context.
func EncodeColumn(dst []byte, tag byte, values []string) ([]byte, error) {
	switch tag {
	case ColPlain:
		return append(dst, strings.Join(values, "\n")...), nil
	case ColDict:
		return encodeDict(dst, values), nil
	case ColDelta:
		return encodeDelta(dst, values)
	}
	return nil, Corruptf("compress: column codec %d", tag)
}

// DecodeColumn appends the column's rows fields to dst, inverting
// EncodeColumn over an already-inflated packed stream. It fails loudly on
// truncated or corrupt streams and on streams that do not hold exactly
// rows values.
func DecodeColumn(dst []string, tag byte, data []byte, rows int) ([]string, error) {
	switch tag {
	case ColPlain:
		if rows == 0 {
			if len(data) != 0 {
				return nil, Corruptf("compress: plain column: data for zero rows")
			}
			return dst, nil
		}
		vals := strings.Split(string(data), "\n")
		if len(vals) != rows {
			return nil, Corruptf("compress: plain column: %d values, want %d", len(vals), rows)
		}
		return append(dst, vals...), nil
	case ColDict:
		return decodeDict(dst, data, rows)
	case ColDelta:
		return decodeDelta(dst, data, rows)
	}
	return nil, Corruptf("compress: column codec %d", tag)
}

func encodeDict(dst []byte, values []string) []byte {
	idx := make(map[string]uint64, 64)
	var entries []string
	for _, v := range values {
		if _, ok := idx[v]; !ok {
			idx[v] = uint64(len(entries))
			entries = append(entries, v)
		}
	}
	var tmp [binary.MaxVarintLen64]byte
	put := func(u uint64) {
		dst = append(dst, tmp[:binary.PutUvarint(tmp[:], u)]...)
	}
	put(uint64(len(entries)))
	for _, e := range entries {
		put(uint64(len(e)))
		dst = append(dst, e...)
	}
	for i := 0; i < len(values); {
		j := i + 1
		for j < len(values) && values[j] == values[i] {
			j++
		}
		put(idx[values[i]])
		put(uint64(j - i))
		i = j
	}
	return dst
}

func decodeDict(dst []string, data []byte, rows int) ([]string, error) {
	n, k := binary.Uvarint(data)
	if k <= 0 || n > uint64(len(data)) {
		return nil, Corruptf("compress: dict column: entry count")
	}
	data = data[k:]
	entries := make([]string, n)
	for i := range entries {
		l, k := binary.Uvarint(data)
		if k <= 0 || l > uint64(len(data)-k) {
			return nil, Corruptf("compress: dict column: entry %d", i)
		}
		entries[i] = string(data[k : k+int(l)])
		data = data[k+int(l):]
	}
	got := 0
	for got < rows {
		idx, k := binary.Uvarint(data)
		if k <= 0 || idx >= n {
			return nil, Corruptf("compress: dict column: run index")
		}
		data = data[k:]
		run, k := binary.Uvarint(data)
		if k <= 0 || run == 0 || run > uint64(rows-got) {
			return nil, Corruptf("compress: dict column: run length")
		}
		data = data[k:]
		for j := uint64(0); j < run; j++ {
			dst = append(dst, entries[idx])
		}
		got += int(run)
	}
	if len(data) != 0 {
		return nil, Corruptf("compress: dict column: %d trailing bytes", len(data))
	}
	return dst, nil
}

func encodeDelta(dst []byte, values []string) ([]byte, error) {
	var tmp [binary.MaxVarintLen64]byte
	prev := int64(0)
	for _, v := range values {
		x, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return nil, Corruptf("compress: delta column: non-integer %q", v)
		}
		dst = append(dst, tmp[:binary.PutVarint(tmp[:], x-prev)]...)
		prev = x
	}
	return dst, nil
}

func decodeDelta(dst []string, data []byte, rows int) ([]string, error) {
	prev := int64(0)
	for i := 0; i < rows; i++ {
		d, k := binary.Varint(data)
		if k <= 0 {
			return nil, Corruptf("compress: delta column: truncated at row %d", i)
		}
		data = data[k:]
		prev += d
		dst = append(dst, strconv.FormatInt(prev, 10))
	}
	if len(data) != 0 {
		return nil, Corruptf("compress: delta column: %d trailing bytes", len(data))
	}
	return dst, nil
}
