package compress

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Stream framing adapts the block codecs to io.Reader/io.Writer pipelines —
// the "maximum compatibility with I/O stream libraries in the big data
// ecosystem" desideratum of §IV-A. A stream is a sequence of
// length-prefixed compressed chunks:
//
//	[uvarint compressed-length][compressed chunk] ... [uvarint 0]
//
// Writers buffer up to ChunkSize bytes before compressing a chunk, so
// arbitrarily large snapshots stream through bounded memory.

// ChunkSize is the default uncompressed chunk granularity of stream
// writers.
const ChunkSize = 1 << 20

// maxChunk bounds a single compressed chunk a reader will accept.
const maxChunk = 16 << 20

// StreamWriter compresses a byte stream chunk-wise through a codec.
type StreamWriter struct {
	c      Codec
	w      *bufio.Writer
	size   int
	buf    []byte
	comp   []byte
	closed bool
}

// NewStreamWriter returns a WriteCloser compressing onto w with codec c.
// Close flushes the final chunk and the end-of-stream marker; it does not
// close the underlying writer.
func NewStreamWriter(c Codec, w io.Writer) *StreamWriter {
	return NewStreamWriterSize(c, w, ChunkSize)
}

// NewStreamWriterSize is NewStreamWriter with an explicit uncompressed
// chunk granularity — the segment leaf format uses small chunks so readers
// can prune and decode them independently. A non-positive size falls back
// to ChunkSize.
func NewStreamWriterSize(c Codec, w io.Writer, chunkSize int) *StreamWriter {
	if chunkSize <= 0 {
		chunkSize = ChunkSize
	}
	return &StreamWriter{c: c, w: bufio.NewWriterSize(w, 64<<10), size: chunkSize}
}

// Write implements io.Writer.
func (s *StreamWriter) Write(p []byte) (int, error) {
	if s.closed {
		return 0, fmt.Errorf("compress: write on closed stream")
	}
	n := len(p)
	for len(p) > 0 {
		room := s.size - len(s.buf)
		if room > len(p) {
			room = len(p)
		}
		s.buf = append(s.buf, p[:room]...)
		p = p[room:]
		if len(s.buf) == s.size {
			if err := s.flushChunk(); err != nil {
				return n - len(p), err
			}
		}
	}
	return n, nil
}

func (s *StreamWriter) flushChunk() error {
	if len(s.buf) == 0 {
		return nil
	}
	s.comp = s.c.Compress(s.comp[:0], s.buf)
	var hdr [binary.MaxVarintLen64]byte
	k := binary.PutUvarint(hdr[:], uint64(len(s.comp)))
	if _, err := s.w.Write(hdr[:k]); err != nil {
		return fmt.Errorf("compress: stream header: %w", err)
	}
	if _, err := s.w.Write(s.comp); err != nil {
		return fmt.Errorf("compress: stream chunk: %w", err)
	}
	s.buf = s.buf[:0]
	return nil
}

// Close flushes pending data and terminates the stream.
func (s *StreamWriter) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	if err := s.flushChunk(); err != nil {
		return err
	}
	var hdr [binary.MaxVarintLen64]byte
	k := binary.PutUvarint(hdr[:], 0)
	if _, err := s.w.Write(hdr[:k]); err != nil {
		return fmt.Errorf("compress: stream terminator: %w", err)
	}
	return s.w.Flush()
}

// StreamReader decompresses a chunked stream produced by StreamWriter.
type StreamReader struct {
	c    Codec
	r    *bufio.Reader
	out  []byte // decoded bytes not yet delivered
	comp []byte
	done bool
}

// NewStreamReader returns a Reader decoding from r with codec c. The codec
// must match the writer's.
func NewStreamReader(c Codec, r io.Reader) *StreamReader {
	return &StreamReader{c: c, r: bufio.NewReaderSize(r, 64<<10)}
}

// Read implements io.Reader.
func (s *StreamReader) Read(p []byte) (int, error) {
	for len(s.out) == 0 {
		if s.done {
			return 0, io.EOF
		}
		if err := s.nextChunk(); err != nil {
			return 0, err
		}
	}
	n := copy(p, s.out)
	s.out = s.out[n:]
	return n, nil
}

func (s *StreamReader) nextChunk() error {
	size, err := binary.ReadUvarint(s.r)
	if err != nil {
		return fmt.Errorf("compress: stream header: %w", err)
	}
	if size == 0 {
		s.done = true
		return nil
	}
	if size > maxChunk {
		return Corruptf("compress: chunk of %d bytes exceeds limit", size)
	}
	if cap(s.comp) < int(size) {
		s.comp = make([]byte, size)
	}
	s.comp = s.comp[:size]
	if _, err := io.ReadFull(s.r, s.comp); err != nil {
		return fmt.Errorf("compress: stream chunk: %w", err)
	}
	s.out, err = s.c.Decompress(s.out[:0], s.comp)
	if err != nil {
		return err
	}
	return nil
}
