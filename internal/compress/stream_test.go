package compress_test

import (
	"bytes"
	"io"
	"math/rand"
	"strings"
	"testing"

	"spate/internal/compress"
)

func TestStreamRoundTripAllCodecs(t *testing.T) {
	for _, c := range allCodecs(t) {
		c := c
		t.Run(c.Name(), func(t *testing.T) {
			// Spans multiple chunks: 2.5 MB of repetitive text.
			data := bytes.Repeat([]byte("stream-chunked telco line|42|OK\n"), 80_000)
			var buf bytes.Buffer
			w := compress.NewStreamWriter(c, &buf)
			// Write in awkward sizes to exercise chunk boundaries.
			for off := 0; off < len(data); {
				n := 100_000 + off%37
				if off+n > len(data) {
					n = len(data) - off
				}
				if _, err := w.Write(data[off : off+n]); err != nil {
					t.Fatal(err)
				}
				off += n
			}
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}
			if buf.Len() >= len(data) {
				t.Errorf("stream did not compress: %d of %d", buf.Len(), len(data))
			}
			got, err := io.ReadAll(compress.NewStreamReader(c, &buf))
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, data) {
				t.Fatalf("round trip mismatch: %d vs %d bytes", len(got), len(data))
			}
		})
	}
}

func TestStreamEmpty(t *testing.T) {
	c := mustCodec(t, "gzip")
	var buf bytes.Buffer
	w := compress.NewStreamWriter(c, &buf)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(compress.NewStreamReader(c, &buf))
	if err != nil || len(got) != 0 {
		t.Fatalf("empty stream: %v, %d bytes", err, len(got))
	}
}

func TestStreamCloseIdempotentAndWriteAfterClose(t *testing.T) {
	c := mustCodec(t, "snappy")
	var buf bytes.Buffer
	w := compress.NewStreamWriter(c, &buf)
	if _, err := w.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write([]byte("y")); err == nil {
		t.Error("write after close accepted")
	}
}

func TestStreamTruncationDetected(t *testing.T) {
	c := mustCodec(t, "zstd")
	data := []byte(strings.Repeat("abc", 100_000))
	var buf bytes.Buffer
	w := compress.NewStreamWriter(c, &buf)
	if _, err := w.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	enc := buf.Bytes()
	for _, cut := range []int{1, len(enc) / 2, len(enc) - 1} {
		got, err := io.ReadAll(compress.NewStreamReader(c, bytes.NewReader(enc[:cut])))
		if err == nil && bytes.Equal(got, data) {
			t.Errorf("cut=%d: truncated stream decoded fully", cut)
		}
	}
}

func TestStreamGarbageChunkHeader(t *testing.T) {
	c := mustCodec(t, "gzip")
	// An absurd chunk size must be rejected before allocation.
	in := []byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F}
	if _, err := io.ReadAll(compress.NewStreamReader(c, bytes.NewReader(in))); err == nil {
		t.Error("giant chunk header accepted")
	}
}

func TestStreamRandomPayload(t *testing.T) {
	c := mustCodec(t, "sevenz")
	data := make([]byte, 300_000)
	rand.New(rand.NewSource(9)).Read(data)
	var buf bytes.Buffer
	w := compress.NewStreamWriter(c, &buf)
	if _, err := w.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(compress.NewStreamReader(c, &buf))
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("random payload: %v", err)
	}
}

func mustCodec(t *testing.T, name string) compress.Codec {
	t.Helper()
	c, err := compress.Lookup(name)
	if err != nil {
		t.Fatal(err)
	}
	return c
}
