package compress_test

import (
	"bytes"
	"io"
	"math/rand"
	"strings"
	"testing"

	"spate/internal/compress"
)

func TestStreamRoundTripAllCodecs(t *testing.T) {
	for _, c := range allCodecs(t) {
		c := c
		t.Run(c.Name(), func(t *testing.T) {
			// Spans multiple chunks: 2.5 MB of repetitive text.
			data := bytes.Repeat([]byte("stream-chunked telco line|42|OK\n"), 80_000)
			var buf bytes.Buffer
			w := compress.NewStreamWriter(c, &buf)
			// Write in awkward sizes to exercise chunk boundaries.
			for off := 0; off < len(data); {
				n := 100_000 + off%37
				if off+n > len(data) {
					n = len(data) - off
				}
				if _, err := w.Write(data[off : off+n]); err != nil {
					t.Fatal(err)
				}
				off += n
			}
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}
			if buf.Len() >= len(data) {
				t.Errorf("stream did not compress: %d of %d", buf.Len(), len(data))
			}
			got, err := io.ReadAll(compress.NewStreamReader(c, &buf))
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, data) {
				t.Fatalf("round trip mismatch: %d vs %d bytes", len(got), len(data))
			}
		})
	}
}

func TestStreamEmpty(t *testing.T) {
	c := mustCodec(t, "gzip")
	var buf bytes.Buffer
	w := compress.NewStreamWriter(c, &buf)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(compress.NewStreamReader(c, &buf))
	if err != nil || len(got) != 0 {
		t.Fatalf("empty stream: %v, %d bytes", err, len(got))
	}
}

func TestStreamCloseIdempotentAndWriteAfterClose(t *testing.T) {
	c := mustCodec(t, "snappy")
	var buf bytes.Buffer
	w := compress.NewStreamWriter(c, &buf)
	if _, err := w.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write([]byte("y")); err == nil {
		t.Error("write after close accepted")
	}
}

func TestStreamTruncationDetected(t *testing.T) {
	c := mustCodec(t, "zstd")
	data := []byte(strings.Repeat("abc", 100_000))
	var buf bytes.Buffer
	w := compress.NewStreamWriter(c, &buf)
	if _, err := w.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	enc := buf.Bytes()
	for _, cut := range []int{1, len(enc) / 2, len(enc) - 1} {
		got, err := io.ReadAll(compress.NewStreamReader(c, bytes.NewReader(enc[:cut])))
		if err == nil && bytes.Equal(got, data) {
			t.Errorf("cut=%d: truncated stream decoded fully", cut)
		}
	}
}

func TestStreamGarbageChunkHeader(t *testing.T) {
	c := mustCodec(t, "gzip")
	// An absurd chunk size must be rejected before allocation.
	in := []byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F}
	if _, err := io.ReadAll(compress.NewStreamReader(c, bytes.NewReader(in))); err == nil {
		t.Error("giant chunk header accepted")
	}
}

func TestStreamRandomPayload(t *testing.T) {
	c := mustCodec(t, "sevenz")
	data := make([]byte, 300_000)
	rand.New(rand.NewSource(9)).Read(data)
	var buf bytes.Buffer
	w := compress.NewStreamWriter(c, &buf)
	if _, err := w.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(compress.NewStreamReader(c, &buf))
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("random payload: %v", err)
	}
}

// TestStreamChunkSizes drives every codec through adversarial chunk
// granularities: a 1-byte chunk degenerates to per-byte compression, prime
// sizes never align with write boundaries, and a chunk larger than the
// payload exercises the single-flush path. The segment leaf format feeds
// these adapters with arbitrary chunk sizes, so all of them must round-trip.
func TestStreamChunkSizes(t *testing.T) {
	payload := []byte(strings.Repeat("cdr|20160104093000|4711|OK|17.25\n", 700)) // ~22 KB
	for _, c := range allCodecs(t) {
		c := c
		t.Run(c.Name(), func(t *testing.T) {
			for _, size := range []int{1, 7, 13, 127, 4093, len(payload) + 1, 1 << 20} {
				var buf bytes.Buffer
				w := compress.NewStreamWriterSize(c, &buf, size)
				// Awkward write sizes so chunk boundaries fall mid-write.
				for off := 0; off < len(payload); {
					n := 997
					if off+n > len(payload) {
						n = len(payload) - off
					}
					if _, err := w.Write(payload[off : off+n]); err != nil {
						t.Fatalf("size=%d: %v", size, err)
					}
					off += n
				}
				if err := w.Close(); err != nil {
					t.Fatalf("size=%d: %v", size, err)
				}
				got, err := io.ReadAll(compress.NewStreamReader(c, &buf))
				if err != nil {
					t.Fatalf("size=%d: %v", size, err)
				}
				if !bytes.Equal(got, payload) {
					t.Fatalf("size=%d: round trip mismatch (%d vs %d bytes)", size, len(got), len(payload))
				}
			}
		})
	}
}

// TestStreamTruncationAllCodecs cuts encoded streams at every interesting
// point — mid-header, mid-chunk, and just before the terminator — and
// requires the reader to fail (or at least not claim a full decode) for
// every codec. The segment reader depends on this to surface torn chunks.
func TestStreamTruncationAllCodecs(t *testing.T) {
	payload := []byte(strings.Repeat("truncated telco stream line|99|FAIL\n", 4000))
	for _, c := range allCodecs(t) {
		c := c
		t.Run(c.Name(), func(t *testing.T) {
			var buf bytes.Buffer
			w := compress.NewStreamWriterSize(c, &buf, 16<<10)
			if _, err := w.Write(payload); err != nil {
				t.Fatal(err)
			}
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}
			enc := buf.Bytes()
			for _, cut := range []int{0, 1, 2, len(enc) / 3, len(enc) / 2, len(enc) - 2, len(enc) - 1} {
				got, err := io.ReadAll(compress.NewStreamReader(c, bytes.NewReader(enc[:cut])))
				if err == nil && bytes.Equal(got, payload) {
					t.Errorf("cut=%d: truncated stream decoded fully without error", cut)
				}
			}
		})
	}
}

func mustCodec(t *testing.T, name string) compress.Codec {
	t.Helper()
	c, err := compress.Lookup(name)
	if err != nil {
		t.Fatal(err)
	}
	return c
}
