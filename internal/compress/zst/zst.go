// Package zst implements a ZSTD-style codec: an LZ77 parse over an
// unbounded window whose literal and token streams are entropy-coded with
// canonical Huffman, plus support for domain-specific trained dictionaries
// — the feature the paper singles out for Facebook's zstd ("allows building
// domain-specific training dictionaries", §IV-B). It targets fast
// decompression with a ratio close to GZIP's, matching its Table I row.
package zst

import (
	"sort"

	"spate/internal/compress"
	"spate/internal/compress/bitio"
	"spate/internal/compress/lz"
)

func init() { compress.Register(New(nil)) }

// Codec is the zstd-style codec, optionally carrying a trained dictionary.
type Codec struct {
	dict []byte
}

// New returns a codec using dict as shared LZ history (nil for none).
// Compressor and decompressor must use the same dictionary.
func New(dict []byte) Codec { return Codec{dict: dict} }

// Name implements compress.Codec.
func (Codec) Name() string { return "zstd" }

// Dict returns the codec's dictionary (nil when untrained).
func (c Codec) Dict() []byte { return c.dict }

// Container flags.
const (
	blockRaw  = 0
	blockComp = 1
	flagDict  = 1 << 4
)

// Compress implements compress.Codec. Layout:
//
//	uvarint origLen | byte flags | body
//
// where a compressed body is: uvarint numSeqs, framed token stream
// (litLen/matchLen/dist uvarints), framed literal stream.
func (c Codec) Compress(dst, src []byte) []byte {
	dst = bitio.AppendUvarint(dst, uint64(len(src)))
	if len(src) < 32 {
		return append(append(dst, blockRaw), src...)
	}
	seqs := lz.ParseWithPrefix(c.dict, src, lz.Options{MinMatch: 4, MaxChain: 64, Lazy: true})
	var tokens []byte
	var lits []byte
	pos := 0
	for _, s := range seqs {
		tokens = bitio.AppendUvarint(tokens, uint64(s.LitLen))
		tokens = bitio.AppendUvarint(tokens, uint64(s.MatchLen))
		if s.MatchLen > 0 {
			tokens = bitio.AppendUvarint(tokens, uint64(s.Dist))
		}
		lits = append(lits, src[pos:pos+s.LitLen]...)
		pos += s.LitLen + s.MatchLen
	}
	flags := byte(blockComp)
	if len(c.dict) > 0 {
		flags |= flagDict
	}
	body := []byte{flags}
	body = bitio.AppendUvarint(body, uint64(len(seqs)))
	body = appendHuffStream(body, tokens)
	body = appendHuffStream(body, lits)
	if len(body) >= len(src)+1 {
		return append(append(dst, blockRaw), src...)
	}
	return append(dst, body...)
}

// Decompress implements compress.Codec.
func (c Codec) Decompress(dst, src []byte) ([]byte, error) {
	want, n := bitio.Uvarint(src)
	if n == 0 {
		return dst, compress.Corruptf("zstd: length header")
	}
	src = src[n:]
	if len(src) < 1 {
		return dst, compress.Corruptf("zstd: missing flags")
	}
	flags := src[0]
	src = src[1:]
	switch flags & 0x0F {
	case blockRaw:
		if uint64(len(src)) < want {
			return dst, compress.Corruptf("zstd: raw block truncated")
		}
		return append(dst, src[:want]...), nil
	case blockComp:
	default:
		return dst, compress.Corruptf("zstd: unknown block type %d", flags&0x0F)
	}
	if flags&flagDict != 0 && len(c.dict) == 0 {
		return dst, compress.Corruptf("zstd: input requires a dictionary")
	}
	numSeqs, n := bitio.Uvarint(src)
	if n == 0 {
		return dst, compress.Corruptf("zstd: seq count")
	}
	src = src[n:]
	tokens, src, err := readHuffStream(src)
	if err != nil {
		return dst, err
	}
	lits, _, err := readHuffStream(src)
	if err != nil {
		return dst, err
	}
	seqs := make([]lz.Seq, 0, numSeqs)
	produced := uint64(0)
	for i := uint64(0); i < numSeqs; i++ {
		var s lz.Seq
		var v uint64
		if v, n = bitio.Uvarint(tokens); n == 0 {
			return dst, compress.Corruptf("zstd: token litlen")
		}
		s.LitLen = int(v)
		tokens = tokens[n:]
		if v, n = bitio.Uvarint(tokens); n == 0 {
			return dst, compress.Corruptf("zstd: token matchlen")
		}
		s.MatchLen = int(v)
		tokens = tokens[n:]
		if s.MatchLen > 0 {
			if v, n = bitio.Uvarint(tokens); n == 0 {
				return dst, compress.Corruptf("zstd: token dist")
			}
			s.Dist = int(v)
			tokens = tokens[n:]
		}
		produced += uint64(s.LitLen + s.MatchLen)
		if produced > want {
			return dst, compress.Corruptf("zstd: sequences overrun")
		}
		seqs = append(seqs, s)
	}
	if produced != want {
		return dst, compress.Corruptf("zstd: sequences cover %d of %d bytes", produced, want)
	}
	var dict []byte
	if flags&flagDict != 0 {
		dict = c.dict
	}
	out, ok := lz.Expand(dst, dict, lits, seqs)
	if !ok {
		return dst, compress.Corruptf("zstd: expand")
	}
	return out, nil
}

// trainChunk is the shingle width used by Train. Telco records repeat long
// column *segments* (constant tail attributes, hot cell IDs) rather than
// whole lines — every line carries a unique timestamp — so training counts
// fixed-width chunks instead of lines.
const trainChunk = 32

// Train builds a domain-specific dictionary from sample blocks, up to
// maxSize bytes: it ranks aligned 32-byte shingles by occurrence count and
// packs the most frequent ones, so the shared history contains the column
// segments every future snapshot will re-emit.
func Train(samples [][]byte, maxSize int) []byte {
	if maxSize <= 0 || len(samples) == 0 {
		return nil
	}
	counts := make(map[string]int)
	for _, s := range samples {
		for i := 0; i+trainChunk <= len(s); i += trainChunk {
			counts[string(s[i:i+trainChunk])]++
		}
	}
	type stat struct {
		chunk string
		count int
	}
	stats := make([]stat, 0, len(counts))
	for c, n := range counts {
		if n >= 2 {
			stats = append(stats, stat{c, n})
		}
	}
	sort.Slice(stats, func(i, j int) bool {
		if stats[i].count != stats[j].count {
			return stats[i].count > stats[j].count
		}
		return stats[i].chunk < stats[j].chunk
	})
	var dict []byte
	// Most frequent chunks go at the END of the dictionary: smaller match
	// distances for the hottest content.
	for _, st := range stats {
		if len(dict)+trainChunk > maxSize {
			break
		}
		dict = append(dict, st.chunk...)
	}
	for i, j := 0, len(dict)-trainChunk; i < j; i, j = i+trainChunk, j-trainChunk {
		var tmp [trainChunk]byte
		copy(tmp[:], dict[i:i+trainChunk])
		copy(dict[i:i+trainChunk], dict[j:j+trainChunk])
		copy(dict[j:j+trainChunk], tmp[:])
	}
	return dict
}
