// Package zst implements a ZSTD-style codec: an LZ77 parse over an
// unbounded window whose literal and token streams are entropy-coded with
// canonical Huffman, plus support for domain-specific trained dictionaries
// — the feature the paper singles out for Facebook's zstd ("allows building
// domain-specific training dictionaries", §IV-B). It targets fast
// decompression with a ratio close to GZIP's, matching its Table I row.
package zst

import (
	"sort"

	"spate/internal/compress"
	"spate/internal/compress/bitio"
	"spate/internal/compress/lz"
)

func init() { compress.Register(New(nil)) }

// Codec is the zstd-style codec, optionally carrying a trained dictionary.
type Codec struct {
	dict []byte
	// maxChain bounds the LZ hash-chain search; 0 selects the ingest
	// default. Deeper chains trade compression CPU for ratio (WithEffort).
	maxChain int
}

// New returns a codec using dict as shared LZ history (nil for none).
// Compressor and decompressor must use the same dictionary.
func New(dict []byte) Codec { return Codec{dict: dict} }

// defaultMaxChain is the ingest-path search depth: compression runs once
// per 30-minute cycle but still sits on the ingest critical path.
const defaultMaxChain = 64

// WithEffort implements compress.Effortful: each level above 1 quadruples
// the hash-chain search depth, up to 4096 at level 4. Background rewriters
// (the lifecycle compactor) compress at high effort; the stream format and
// dictionary are unchanged, so readers never notice.
func (c Codec) WithEffort(level int) compress.Codec {
	chain := defaultMaxChain
	for ; level > 1 && chain < 4096; level-- {
		chain *= 4
	}
	c.maxChain = chain
	return c
}

// Name implements compress.Codec.
func (Codec) Name() string { return "zstd" }

// Dict returns the codec's dictionary (nil when untrained).
func (c Codec) Dict() []byte { return c.dict }

// Container flags.
const (
	blockRaw  = 0
	blockComp = 1
	flagDict  = 1 << 4
)

// Compress implements compress.Codec. Layout:
//
//	uvarint origLen | byte flags | body
//
// where a compressed body is: uvarint numSeqs, framed token stream
// (litLen/matchLen/dist uvarints), framed literal stream.
func (c Codec) Compress(dst, src []byte) []byte {
	dst = bitio.AppendUvarint(dst, uint64(len(src)))
	if len(src) < 32 {
		return append(append(dst, blockRaw), src...)
	}
	chain := c.maxChain
	if chain <= 0 {
		chain = defaultMaxChain
	}
	seqs := lz.ParseWithPrefix(c.dict, src, lz.Options{MinMatch: 4, MaxChain: chain, Lazy: true})
	var tokens []byte
	var lits []byte
	pos := 0
	for _, s := range seqs {
		tokens = bitio.AppendUvarint(tokens, uint64(s.LitLen))
		tokens = bitio.AppendUvarint(tokens, uint64(s.MatchLen))
		if s.MatchLen > 0 {
			tokens = bitio.AppendUvarint(tokens, uint64(s.Dist))
		}
		lits = append(lits, src[pos:pos+s.LitLen]...)
		pos += s.LitLen + s.MatchLen
	}
	flags := byte(blockComp)
	if len(c.dict) > 0 {
		flags |= flagDict
	}
	body := []byte{flags}
	body = bitio.AppendUvarint(body, uint64(len(seqs)))
	body = appendHuffStream(body, tokens)
	body = appendHuffStream(body, lits)
	if len(body) >= len(src)+1 {
		return append(append(dst, blockRaw), src...)
	}
	return append(dst, body...)
}

// Decompress implements compress.Codec.
func (c Codec) Decompress(dst, src []byte) ([]byte, error) {
	want, n := bitio.Uvarint(src)
	if n == 0 {
		return dst, compress.Corruptf("zstd: length header")
	}
	src = src[n:]
	if len(src) < 1 {
		return dst, compress.Corruptf("zstd: missing flags")
	}
	flags := src[0]
	src = src[1:]
	switch flags & 0x0F {
	case blockRaw:
		if uint64(len(src)) < want {
			return dst, compress.Corruptf("zstd: raw block truncated")
		}
		return append(dst, src[:want]...), nil
	case blockComp:
	default:
		return dst, compress.Corruptf("zstd: unknown block type %d", flags&0x0F)
	}
	if flags&flagDict != 0 && len(c.dict) == 0 {
		return dst, compress.Corruptf("zstd: input requires a dictionary")
	}
	numSeqs, n := bitio.Uvarint(src)
	if n == 0 {
		return dst, compress.Corruptf("zstd: seq count")
	}
	src = src[n:]
	tokens, src, err := readHuffStream(src)
	if err != nil {
		return dst, err
	}
	lits, _, err := readHuffStream(src)
	if err != nil {
		return dst, err
	}
	seqs := make([]lz.Seq, 0, numSeqs)
	produced := uint64(0)
	for i := uint64(0); i < numSeqs; i++ {
		var s lz.Seq
		var v uint64
		if v, n = bitio.Uvarint(tokens); n == 0 {
			return dst, compress.Corruptf("zstd: token litlen")
		}
		s.LitLen = int(v)
		tokens = tokens[n:]
		if v, n = bitio.Uvarint(tokens); n == 0 {
			return dst, compress.Corruptf("zstd: token matchlen")
		}
		s.MatchLen = int(v)
		tokens = tokens[n:]
		if s.MatchLen > 0 {
			if v, n = bitio.Uvarint(tokens); n == 0 {
				return dst, compress.Corruptf("zstd: token dist")
			}
			s.Dist = int(v)
			tokens = tokens[n:]
		}
		produced += uint64(s.LitLen + s.MatchLen)
		if produced > want {
			return dst, compress.Corruptf("zstd: sequences overrun")
		}
		seqs = append(seqs, s)
	}
	if produced != want {
		return dst, compress.Corruptf("zstd: sequences cover %d of %d bytes", produced, want)
	}
	var dict []byte
	if flags&flagDict != 0 {
		dict = c.dict
	}
	out, ok := lz.Expand(dst, dict, lits, seqs)
	if !ok {
		return dst, compress.Corruptf("zstd: expand")
	}
	return out, nil
}

// trainChunk is the shingle width used by Train. Telco records repeat long
// column *segments* (constant tail attributes, hot cell IDs) rather than
// whole lines — every line carries a unique timestamp — so training counts
// fixed-width chunks instead of lines.
const trainChunk = 32

// Train builds a domain-specific dictionary from sample blocks, up to
// maxSize bytes. Two regions share the budget: ranked repeated 32-byte
// shingles (at most half), then raw recent sample history filling the
// remainder. The split reflects measurement on telco wire text: every
// line carries a unique timestamp, so aligned shingles rarely capture the
// cross-snapshot redundancy — verbatim recent history hands the LZ parser
// real matches (hot cell IDs, constant attribute tails at arbitrary
// offsets) and is what actually pays.
func Train(samples [][]byte, maxSize int) []byte {
	if maxSize <= 0 || len(samples) == 0 {
		return nil
	}
	counts := make(map[string]int)
	for _, s := range samples {
		for i := 0; i+trainChunk <= len(s); i += trainChunk {
			counts[string(s[i:i+trainChunk])]++
		}
	}
	type stat struct {
		chunk string
		count int
	}
	stats := make([]stat, 0, len(counts))
	for c, n := range counts {
		if n >= 2 {
			stats = append(stats, stat{c, n})
		}
	}
	sort.Slice(stats, func(i, j int) bool {
		if stats[i].count != stats[j].count {
			return stats[i].count > stats[j].count
		}
		return stats[i].chunk < stats[j].chunk
	})
	var dict []byte
	// Most frequent chunks go LAST within the shingle region: smaller
	// match distances for the hottest content.
	for _, st := range stats {
		if len(dict)+trainChunk > maxSize/2 {
			break
		}
		dict = append(dict, st.chunk...)
	}
	for i, j := 0, len(dict)-trainChunk; i < j; i, j = i+trainChunk, j-trainChunk {
		var tmp [trainChunk]byte
		copy(tmp[:], dict[i:i+trainChunk])
		copy(dict[i:i+trainChunk], dict[j:j+trainChunk])
		copy(dict[j:j+trainChunk], tmp[:])
	}
	// Raw history fills the rest, walking samples newest-first so the
	// freshest content lands at the very end — the smallest distances.
	if rem := maxSize - len(dict); rem > 0 {
		var hist []byte
		for i := len(samples) - 1; i >= 0 && len(hist) < rem; i-- {
			s := samples[i]
			take := rem - len(hist)
			if take > len(s) {
				take = len(s)
			}
			hist = append(append([]byte(nil), s[len(s)-take:]...), hist...)
		}
		dict = append(dict, hist...)
	}
	return dict
}
