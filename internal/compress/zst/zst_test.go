package zst

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"spate/internal/compress/bitio"
)

func TestBuildLengthsKraft(t *testing.T) {
	// Any frequency distribution must yield a prefix-decodable code:
	// Kraft sum <= 1.
	f := func(seed int64, nsyms uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		var freq [256]int
		n := int(nsyms)
		if n == 0 {
			n = 1
		}
		for i := 0; i < n; i++ {
			freq[rng.Intn(256)] += 1 + rng.Intn(10000)
		}
		lens := buildLengths(&freq)
		kraft := 0.0
		for s, l := range lens {
			if freq[s] > 0 && l == 0 {
				return false // used symbol without a code
			}
			if l > maxCodeLen {
				return false
			}
			if l > 0 {
				kraft += 1 / float64(uint(1)<<l)
			}
		}
		return kraft <= 1.0000001
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestBuildLengthsOptimalish(t *testing.T) {
	// A heavily skewed distribution gives the hot symbol a short code.
	var freq [256]int
	freq['a'] = 1000000
	freq['b'] = 1
	freq['c'] = 1
	lens := buildLengths(&freq)
	if lens['a'] > 2 {
		t.Errorf("hot symbol got %d-bit code", lens['a'])
	}
	if lens['b'] < lens['a'] {
		t.Errorf("cold symbol got shorter code than hot one")
	}
}

func TestHuffStreamRoundTrip(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("a"),
		[]byte(strings.Repeat("abcabc", 500)),
		bytes.Repeat([]byte{0}, 1000),
		randomBytes(2048, 4),
	}
	for i, data := range cases {
		enc := appendHuffStream(nil, data)
		got, rest, err := readHuffStream(enc)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("case %d: round trip mismatch", i)
		}
		if len(rest) != 0 {
			t.Fatalf("case %d: %d leftover bytes", i, len(rest))
		}
	}
}

func TestHuffStreamFraming(t *testing.T) {
	// Two consecutive streams must be separable.
	a := []byte(strings.Repeat("hello", 200))
	b := []byte(strings.Repeat("world", 100))
	enc := appendHuffStream(nil, a)
	enc = appendHuffStream(enc, b)
	gotA, rest, err := readHuffStream(enc)
	if err != nil || !bytes.Equal(gotA, a) {
		t.Fatalf("first stream: %v", err)
	}
	gotB, rest, err := readHuffStream(rest)
	if err != nil || !bytes.Equal(gotB, b) {
		t.Fatalf("second stream: %v", err)
	}
	if len(rest) != 0 {
		t.Fatalf("%d leftover bytes", len(rest))
	}
}

func TestHuffStreamCorruption(t *testing.T) {
	data := []byte(strings.Repeat("abcdef", 300))
	enc := appendHuffStream(nil, data)
	if _, _, err := readHuffStream(enc[:3]); err == nil {
		t.Error("truncated stream accepted")
	}
	if _, _, err := readHuffStream(nil); err == nil {
		t.Error("empty stream accepted")
	}
	// Unknown mode byte.
	bad := bitio.AppendUvarint(nil, 5)
	bad = append(bad, 99)
	if _, _, err := readHuffStream(bad); err == nil {
		t.Error("unknown mode accepted")
	}
}

func TestTrainRanksHotChunks(t *testing.T) {
	hot := strings.Repeat("H", trainChunk)
	cold := strings.Repeat("C", trainChunk)
	var samples [][]byte
	for i := 0; i < 8; i++ {
		samples = append(samples, []byte(hot))
	}
	samples = append(samples, []byte(cold), []byte(cold))
	dict := Train(samples, 2*trainChunk)
	if len(dict) != 2*trainChunk {
		t.Fatalf("dict len = %d", len(dict))
	}
	// The shingle region (first half of the budget) keeps only the hottest
	// chunk; raw recent history — the cold sample, which arrived last —
	// fills the remainder at the end.
	if string(dict[:trainChunk]) != hot {
		t.Errorf("hot chunk not in the shingle region")
	}
	if string(dict[trainChunk:]) != cold {
		t.Errorf("raw history tail missing")
	}
}

func TestTrainEdgeCases(t *testing.T) {
	if Train(nil, 100) != nil {
		t.Error("empty samples produced a dictionary")
	}
	if Train([][]byte{[]byte("x")}, 0) != nil {
		t.Error("zero budget produced a dictionary")
	}
	// Unique chunks (count < 2) never enter the ranked prefix; the budget
	// falls through to raw recent history instead.
	sample := randomBytes(10*trainChunk, 7)
	if d := Train([][]byte{sample}, 1024); !bytes.Equal(d, sample) {
		t.Errorf("unique chunks: dict = %d bytes, want the raw sample", len(d))
	}
	// A tight budget keeps only the sample's tail.
	if d := Train([][]byte{sample}, trainChunk); !bytes.Equal(d, sample[len(sample)-trainChunk:]) {
		t.Errorf("tight budget kept %d bytes, want the %d-byte tail", len(d), trainChunk)
	}
}

// TestTrainedDictionaryBeatsPlain is the training payoff test: on small
// line-structured inputs whose lines never repeat verbatim, a dictionary
// trained on sibling samples must compress future samples tighter than no
// dictionary — the property the lifecycle compactor's byte reduction
// rests on.
func TestTrainedDictionaryBeatsPlain(t *testing.T) {
	line := func(i int) string {
		return fmt.Sprintf("ts=2016-04-0%dT12:%02d:%02d|cell=%d|result=OK|tech=4G|dur=%d\n",
			i%7+1, i%60, (i*7)%60, 1000+i%13, i*3%500)
	}
	var samples [][]byte
	for s := 0; s < 4; s++ {
		var b []byte
		for i := s * 40; i < (s+1)*40; i++ {
			b = append(b, line(i)...)
		}
		samples = append(samples, b)
	}
	dict := Train(samples[:3], 8<<10)
	if len(dict) == 0 {
		t.Fatal("no dictionary trained")
	}
	plain := len(New(nil).Compress(nil, samples[3]))
	trained := len(New(dict).Compress(nil, samples[3]))
	if trained >= plain {
		t.Errorf("trained dict does not pay: %d >= %d bytes", trained, plain)
	}
}

func TestDictMismatchFailsLoudly(t *testing.T) {
	data := bytes.Repeat([]byte("shared-structure|"), 64)
	dictA := bytes.Repeat([]byte("shared-structure|"), 8)
	cA := New(dictA)
	comp := cA.Compress(nil, data)
	// Decoding with no dictionary is detected.
	if _, err := New(nil).Decompress(nil, comp); err == nil {
		t.Error("dict block decoded without dictionary")
	}
	// Decoding with a wrong same-length dictionary must not silently return
	// wrong bytes: either error or correct output required. (The format
	// does not checksum dictionaries; LZ distances may resolve, so this
	// documents the failure mode rather than asserting an error.)
	wrong := bytes.Repeat([]byte("XXXXXX-structure|"), 8)
	got, err := New(wrong).Decompress(nil, comp)
	if err == nil && bytes.Equal(got, data) {
		t.Log("wrong dictionary coincidentally decoded correctly")
	}
}

func randomBytes(n int, seed int64) []byte {
	out := make([]byte, n)
	rand.New(rand.NewSource(seed)).Read(out)
	return out
}

func BenchmarkHuffEncode(b *testing.B) {
	data := []byte(strings.Repeat("telco text with skewed byte frequencies 0123|", 1000))
	b.SetBytes(int64(len(data)))
	var out []byte
	for i := 0; i < b.N; i++ {
		out = appendHuffStream(out[:0], data)
	}
}

// TestWithEffortCompressesTighter pins the compactor's contract: a
// high-effort codec produces a stream the base codec decodes, and on
// redundant line-structured text the deeper match search strictly pays.
func TestWithEffortCompressesTighter(t *testing.T) {
	var b []byte
	for i := 0; i < 2000; i++ {
		b = append(b, fmt.Sprintf("ts=%09d|cell=%d|result=OK|bytes=%d\n", i*37, i%97, i*i%8192)...)
	}
	base := New(nil)
	hard := base.WithEffort(3)
	plain := base.Compress(nil, b)
	tight := hard.Compress(nil, b)
	if len(tight) >= len(plain) {
		t.Errorf("effort 3: %d >= %d bytes", len(tight), len(plain))
	}
	got, err := base.Decompress(nil, tight)
	if err != nil {
		t.Fatalf("base codec cannot decode high-effort stream: %v", err)
	}
	if !bytes.Equal(got, b) {
		t.Fatal("high-effort round trip mismatch")
	}
	// Effort levels clamp rather than grow without bound.
	if c := base.WithEffort(99); len(c.Compress(nil, b)) == 0 {
		t.Fatal("clamped effort produced nothing")
	}
}
