package zst

// Canonical length-limited Huffman coding over byte alphabets — the
// entropy stage of the zstd-style codec (standing in for zstd's HUF/FSE
// coders, which are likewise table-driven byte-alphabet entropy coders).

import (
	"container/heap"
	"sort"

	"spate/internal/compress"
	"spate/internal/compress/bitio"
)

const maxCodeLen = 15

// huffNode is a tree node during construction.
type huffNode struct {
	freq        int
	sym         int // -1 for internal nodes
	left, right *huffNode
}

type huffHeap []*huffNode

func (h huffHeap) Len() int           { return len(h) }
func (h huffHeap) Less(i, j int) bool { return h[i].freq < h[j].freq }
func (h huffHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *huffHeap) Push(x any)        { *h = append(*h, x.(*huffNode)) }
func (h *huffHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// buildLengths computes code lengths for the given symbol frequencies,
// limited to maxCodeLen bits. Symbols with zero frequency get length 0.
func buildLengths(freq *[256]int) [256]uint8 {
	var lens [256]uint8
	var h huffHeap
	for s, f := range freq {
		if f > 0 {
			h = append(h, &huffNode{freq: f, sym: s})
		}
	}
	switch len(h) {
	case 0:
		return lens
	case 1:
		lens[h[0].sym] = 1
		return lens
	}
	heap.Init(&h)
	for h.Len() > 1 {
		a := heap.Pop(&h).(*huffNode)
		b := heap.Pop(&h).(*huffNode)
		heap.Push(&h, &huffNode{freq: a.freq + b.freq, sym: -1, left: a, right: b})
	}
	root := h[0]
	var walk func(n *huffNode, depth uint8)
	walk = func(n *huffNode, depth uint8) {
		if n.left == nil {
			if depth == 0 {
				depth = 1
			}
			lens[n.sym] = depth
			return
		}
		walk(n.left, depth+1)
		walk(n.right, depth+1)
	}
	walk(root, 0)
	limitLengths(&lens)
	return lens
}

// limitLengths clamps code lengths to maxCodeLen and repairs the Kraft sum
// by deepening the shallowest over-budget codes.
func limitLengths(lens *[256]uint8) {
	over := false
	for _, l := range lens {
		if l > maxCodeLen {
			over = true
			break
		}
	}
	if !over {
		return
	}
	// Kraft units of 1/2^maxCodeLen.
	const unit = 1 << maxCodeLen
	total := 0
	for s, l := range lens {
		if l == 0 {
			continue
		}
		if l > maxCodeLen {
			lens[s] = maxCodeLen
		}
		total += unit >> lens[s]
	}
	// While the code is over-subscribed, lengthen the longest codes that
	// are still shorter than the limit... deepening reduces the sum.
	for total > unit {
		// Find a symbol with the largest length < maxCodeLen and deepen it.
		best := -1
		for s, l := range lens {
			if l > 0 && l < maxCodeLen && (best < 0 || l > lens[best]) {
				best = s
			}
		}
		if best < 0 {
			break // cannot repair; decoder guards against this
		}
		total -= unit >> lens[best]
		lens[best]++
		total += unit >> lens[best]
	}
}

// canonicalCodes assigns canonical codes (shorter first, then by symbol).
func canonicalCodes(lens *[256]uint8) (codes [256]uint32) {
	type sl struct {
		sym int
		len uint8
	}
	var syms []sl
	for s, l := range lens {
		if l > 0 {
			syms = append(syms, sl{s, l})
		}
	}
	sort.Slice(syms, func(i, j int) bool {
		if syms[i].len != syms[j].len {
			return syms[i].len < syms[j].len
		}
		return syms[i].sym < syms[j].sym
	})
	code := uint32(0)
	prevLen := uint8(0)
	for _, e := range syms {
		code <<= e.len - prevLen
		codes[e.sym] = code
		code++
		prevLen = e.len
	}
	return codes
}

// huffDecoder decodes canonical codes via first-code tables.
type huffDecoder struct {
	// For each length l: firstCode[l] is the smallest code of that length,
	// offset[l] indexes into symbols for that length's first symbol.
	firstCode [maxCodeLen + 2]uint32
	offset    [maxCodeLen + 2]int
	count     [maxCodeLen + 2]int
	symbols   []byte
}

func newHuffDecoder(lens *[256]uint8) *huffDecoder {
	d := &huffDecoder{}
	for _, l := range lens {
		if l > 0 {
			d.count[l]++
		}
	}
	total := 0
	code := uint32(0)
	for l := 1; l <= maxCodeLen; l++ {
		code <<= 1
		d.firstCode[l] = code
		d.offset[l] = total
		code += uint32(d.count[l])
		total += d.count[l]
	}
	d.symbols = make([]byte, total)
	idx := d.offset
	for s, l := range lens {
		if l > 0 {
			d.symbols[idx[l]] = byte(s)
			idx[l]++
		}
	}
	return d
}

// decodeSym reads one symbol from the bit reader.
func (d *huffDecoder) decodeSym(r *bitio.Reader) (byte, error) {
	code := uint32(0)
	for l := 1; l <= maxCodeLen; l++ {
		b, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		code = code<<1 | uint32(b)
		if d.count[l] > 0 && code < d.firstCode[l]+uint32(d.count[l]) && code >= d.firstCode[l] {
			return d.symbols[d.offset[l]+int(code-d.firstCode[l])], nil
		}
	}
	return 0, compress.Corruptf("zstd: invalid huffman code")
}

// Stream framing for one huffman-coded byte stream:
//   uvarint rawLen
//   byte mode (0 = stored raw, 1 = huffman)
//   mode 0: rawLen bytes
//   mode 1: 128-byte length table (4 bits/symbol), then the code bits.

const (
	modeRaw  = 0
	modeHuff = 1
)

// appendHuffStream encodes data as one framed stream, falling back to raw
// storage when huffman does not help (e.g. high-entropy token bytes).
func appendHuffStream(dst, data []byte) []byte {
	dst = bitio.AppendUvarint(dst, uint64(len(data)))
	if len(data) == 0 {
		return append(dst, modeRaw)
	}
	var freq [256]int
	for _, b := range data {
		freq[b]++
	}
	lens := buildLengths(&freq)
	codes := canonicalCodes(&lens)
	bits := 0
	for s, f := range freq {
		bits += f * int(lens[s])
	}
	estimate := 1 + 128 + (bits+7)/8
	if estimate >= len(data)+1 {
		dst = append(dst, modeRaw)
		return append(dst, data...)
	}
	dst = append(dst, modeHuff)
	for i := 0; i < 256; i += 2 {
		dst = append(dst, lens[i]<<4|lens[i+1])
	}
	w := bitio.NewWriter(dst)
	for _, b := range data {
		w.WriteBits(uint64(codes[b]), uint(lens[b]))
	}
	return w.Bytes()
}

// readHuffStream decodes one framed stream from src, returning the data
// and the remaining input.
func readHuffStream(src []byte) (data, rest []byte, err error) {
	rawLen, n := bitio.Uvarint(src)
	if n == 0 {
		return nil, nil, compress.Corruptf("zstd: stream header")
	}
	src = src[n:]
	if len(src) < 1 {
		return nil, nil, compress.Corruptf("zstd: stream mode")
	}
	mode := src[0]
	src = src[1:]
	switch mode {
	case modeRaw:
		if uint64(len(src)) < rawLen {
			return nil, nil, compress.Corruptf("zstd: raw stream truncated")
		}
		return src[:rawLen], src[rawLen:], nil
	case modeHuff:
		if len(src) < 128 {
			return nil, nil, compress.Corruptf("zstd: length table truncated")
		}
		var lens [256]uint8
		for i := 0; i < 128; i++ {
			lens[2*i] = src[i] >> 4
			lens[2*i+1] = src[i] & 0x0F
		}
		src = src[128:]
		dec := newHuffDecoder(&lens)
		r := bitio.NewReader(src)
		out := make([]byte, rawLen)
		for i := range out {
			s, err := dec.decodeSym(r)
			if err != nil {
				return nil, nil, compress.Corruptf("zstd: huffman body")
			}
			out[i] = s
		}
		// The bit reader consumed whole bytes; the stream is self-sizing
		// only through rawLen, so compute the consumed byte count.
		consumed := (rawLenBits(dec, out) + 7) / 8
		if consumed > len(src) {
			return nil, nil, compress.Corruptf("zstd: huffman overrun")
		}
		return out, src[consumed:], nil
	default:
		return nil, nil, compress.Corruptf("zstd: unknown stream mode %d", mode)
	}
}

// rawLenBits recomputes the bit length of the encoded stream so the framing
// can locate the next stream. The decoder tables give each symbol's length.
func rawLenBits(d *huffDecoder, out []byte) int {
	var lenOf [256]uint8
	for l := 1; l <= maxCodeLen; l++ {
		for i := 0; i < d.count[l]; i++ {
			lenOf[d.symbols[d.offset[l]+i]] = uint8(l)
		}
	}
	bits := 0
	for _, b := range out {
		bits += int(lenOf[b])
	}
	return bits
}
