package lz

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// roundTrip parses src and expands the parse back.
func roundTrip(t *testing.T, prefix, src []byte, o Options) {
	t.Helper()
	seqs := ParseWithPrefix(prefix, src, o)
	total := 0
	var lits []byte
	pos := 0
	for _, s := range seqs {
		lits = append(lits, src[pos:pos+s.LitLen]...)
		pos += s.LitLen + s.MatchLen
		total += s.LitLen + s.MatchLen
	}
	if total != len(src) {
		t.Fatalf("parse covers %d bytes, want %d", total, len(src))
	}
	got, ok := Expand(nil, prefix, lits, seqs)
	if !ok {
		t.Fatal("Expand failed")
	}
	if !bytes.Equal(got, src) {
		t.Fatalf("round trip mismatch: got %d bytes, want %d", len(got), len(src))
	}
}

func TestParseEmpty(t *testing.T) {
	if seqs := Parse(nil, Options{}); seqs != nil {
		t.Errorf("Parse(nil) = %v", seqs)
	}
}

func TestParseRoundTripTexts(t *testing.T) {
	tests := []struct {
		name string
		src  string
	}{
		{"short literal", "abc"},
		{"pure repeat", strings.Repeat("A", 1000)},
		{"line repeats", strings.Repeat("201601221530|357001|VOICE|OK\n", 200)},
		{"alternating", strings.Repeat("ab", 500)},
		{"no repeats", "the quick brown fox jumps over the lazy dog 0123456789"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			roundTrip(t, nil, []byte(tc.src), Options{})
		})
	}
}

func TestParseFindsRepeats(t *testing.T) {
	src := []byte(strings.Repeat("telco-record-line|12345|OK\n", 100))
	seqs := Parse(src, Options{})
	var matched int
	for _, s := range seqs {
		matched += s.MatchLen
	}
	if frac := float64(matched) / float64(len(src)); frac < 0.9 {
		t.Errorf("only %.0f%% of repetitive input matched", frac*100)
	}
}

func TestParseRandomRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		n := rng.Intn(5000)
		src := make([]byte, n)
		// Mix of random and repeated chunks.
		for i := 0; i < n; {
			if rng.Float64() < 0.5 && i > 10 {
				l := 1 + rng.Intn(30)
				off := 1 + rng.Intn(i)
				for k := 0; k < l && i < n; k++ {
					src[i] = src[i-off]
					i++
				}
			} else {
				src[i] = byte(rng.Intn(8)) // small alphabet encourages matches
				i++
			}
		}
		roundTrip(t, nil, src, Options{MaxChain: 16})
	}
}

func TestParseWithPrefixUsesDictionary(t *testing.T) {
	dict := []byte(strings.Repeat("COMMON-TELCO-HEADER|GSM|PLAN0|", 10))
	src := []byte("COMMON-TELCO-HEADER|GSM|PLAN0|payload")
	seqs := ParseWithPrefix(dict, src, Options{})
	if len(seqs) == 0 {
		t.Fatal("no sequences")
	}
	first := seqs[0]
	if first.LitLen != 0 || first.MatchLen < 20 {
		t.Errorf("expected a long dictionary match at position 0, got %+v", first)
	}
	if first.Dist <= first.MatchLen && first.Dist < len(src) {
		// Distance should reach back into the dictionary.
	}
	roundTrip(t, dict, src, Options{})
}

func TestWindowLimitsDistance(t *testing.T) {
	// A repeat further back than the window must not be referenced.
	block := make([]byte, 300)
	rand.New(rand.NewSource(9)).Read(block)
	src := append(append([]byte{}, block...), make([]byte, 5000)...) // zeros gap
	src = append(src, block...)
	seqs := Parse(src, Options{WindowSize: 1024})
	for _, s := range seqs {
		if s.Dist > 1024+maxMatch {
			t.Fatalf("distance %d exceeds window", s.Dist)
		}
	}
	roundTrip(t, nil, src, Options{WindowSize: 1024})
}

func TestExpandRejectsCorrupt(t *testing.T) {
	// Distance beyond start of output.
	if _, ok := Expand(nil, nil, []byte("ab"), []Seq{{LitLen: 2, MatchLen: 3, Dist: 100}}); ok {
		t.Error("Expand accepted invalid distance")
	}
	// Literal overrun.
	if _, ok := Expand(nil, nil, []byte("a"), []Seq{{LitLen: 5}}); ok {
		t.Error("Expand accepted literal overrun")
	}
	// Leftover literals.
	if _, ok := Expand(nil, nil, []byte("abc"), []Seq{{LitLen: 1}}); ok {
		t.Error("Expand accepted leftover literals")
	}
	// Zero distance.
	if _, ok := Expand(nil, nil, nil, []Seq{{MatchLen: 2, Dist: 0}}); ok {
		t.Error("Expand accepted zero distance")
	}
}

func TestParsePropertyCoverage(t *testing.T) {
	f := func(src []byte) bool {
		seqs := Parse(src, Options{MaxChain: 8})
		total := 0
		for _, s := range seqs {
			if s.LitLen < 0 || s.MatchLen < 0 {
				return false
			}
			total += s.LitLen + s.MatchLen
		}
		return total == len(src)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
