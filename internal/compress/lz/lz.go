// Package lz implements a shared LZ77 hash-chain match finder used by the
// sevenz (LZMA-style) and zstd-style codecs. It turns a byte stream into a
// sequence of (literal-run, match) steps that entropy coders then encode.
package lz

// Seq is one parse step: LitLen literal bytes copied verbatim from the
// input, followed by a back-reference of MatchLen bytes at distance Dist.
// The final step of a parse may have MatchLen == 0 (trailing literals).
type Seq struct {
	LitLen   int
	MatchLen int
	Dist     int
}

// Options tunes the match finder.
type Options struct {
	// WindowSize bounds match distances. <= 0 means unbounded (whole input,
	// plus the dictionary prefix if any).
	WindowSize int
	// MinMatch is the smallest useful match length (default 4).
	MinMatch int
	// MaxChain bounds hash-chain traversal per position (default 32).
	// Larger values find better matches at higher compression cost.
	MaxChain int
	// Lazy enables one-or-more-step lazy matching: when the position after
	// a match start offers a longer match, the current byte is emitted as a
	// literal instead (the classic gzip/LZMA parsing refinement).
	Lazy bool
}

func (o Options) withDefaults() Options {
	if o.MinMatch <= 0 {
		o.MinMatch = 4
	}
	if o.MinMatch < 4 {
		o.MinMatch = 4 // the hash covers 4 bytes
	}
	if o.MaxChain <= 0 {
		o.MaxChain = 32
	}
	return o
}

const (
	hashBits = 16
	hashLen  = 4
	maxMatch = 1 << 16
)

func hash4(b []byte) uint32 {
	// 4-byte multiplicative hash (Knuth).
	v := uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
	return v * 2654435761 >> (32 - hashBits)
}

// Parse produces an LZ77 parse of src. The returned sequences exactly cover
// src: sum(LitLen + MatchLen) == len(src).
func Parse(src []byte, o Options) []Seq {
	return ParseWithPrefix(nil, src, o)
}

// ParseWithPrefix parses src with prefix prepended as match history (a
// shared dictionary, as in zstd dictionary compression). Distances are
// measured in the concatenated stream, so they may exceed the current
// position within src and reach into the prefix.
func ParseWithPrefix(prefix, src []byte, o Options) []Seq {
	o = o.withDefaults()
	if len(src) == 0 {
		return nil
	}
	data := src
	base := 0
	if len(prefix) > 0 {
		data = make([]byte, 0, len(prefix)+len(src))
		data = append(data, prefix...)
		data = append(data, src...)
		base = len(prefix)
	}

	head := make([]int32, 1<<hashBits)
	for i := range head {
		head[i] = -1
	}
	prev := make([]int32, len(data))

	insert := func(i int) {
		if i+hashLen > len(data) {
			return
		}
		h := hash4(data[i:])
		prev[i] = head[h]
		head[h] = int32(i)
	}
	// Seed the chains with the dictionary prefix.
	for i := 0; i < base; i++ {
		insert(i)
	}

	find := func(i int) (bestLen, bestDist int) {
		if i+hashLen > len(data) {
			return 0, 0
		}
		h := hash4(data[i:])
		cand := head[h]
		limit := 0
		if o.WindowSize > 0 && i-o.WindowSize > 0 {
			limit = i - o.WindowSize
		}
		for chain := 0; cand >= int32(limit) && chain < o.MaxChain; chain++ {
			j := int(cand)
			if j < limit {
				break
			}
			l := matchLen(data, j, i)
			if l > bestLen {
				bestLen, bestDist = l, i-j
				if l >= maxMatch {
					return maxMatch, bestDist
				}
			}
			cand = prev[j]
		}
		return bestLen, bestDist
	}

	var seqs []Seq
	lit := 0 // pending literal run length
	i := base
	for i < len(data) {
		bestLen, bestDist := find(i)
		if bestLen < o.MinMatch {
			insert(i)
			i++
			lit++
			continue
		}
		inserted := false
		if o.Lazy {
			// Defer the match while the next position offers a longer one.
			for i+1+hashLen <= len(data) {
				if !inserted {
					insert(i)
					inserted = true
				}
				l2, d2 := find(i + 1)
				if l2 <= bestLen {
					break
				}
				i++
				lit++
				bestLen, bestDist = l2, d2
				inserted = false
			}
		}
		seqs = append(seqs, Seq{LitLen: lit, MatchLen: bestLen, Dist: bestDist})
		lit = 0
		if !inserted {
			insert(i)
		}
		// Insert positions covered by the match so later data can
		// reference them (sparsely, to bound cost on long matches).
		end := i + bestLen
		step := 1
		if bestLen > 64 {
			step = 4
		}
		for i++; i < end; i += step {
			insert(i)
		}
		i = end
	}
	if lit > 0 {
		seqs = append(seqs, Seq{LitLen: lit})
	}
	return seqs
}

func matchLen(data []byte, j, i int) int {
	n := 0
	for i+n < len(data) && data[j+n] == data[i+n] && n < maxMatch {
		n++
	}
	return n
}

// Expand reconstructs the original bytes from a parse: the inverse of
// Parse, used by tests and as the decode core of the LZ codecs. literals
// holds the concatenated literal bytes of all sequences; prefix is the
// dictionary (may be nil).
func Expand(dst, prefix, literals []byte, seqs []Seq) ([]byte, bool) {
	histBase := len(prefix)
	// out holds prefix + decoded data; trimmed before return.
	out := make([]byte, 0, histBase+len(literals)*2)
	out = append(out, prefix...)
	lp := 0
	for _, s := range seqs {
		if lp+s.LitLen > len(literals) {
			return dst, false
		}
		out = append(out, literals[lp:lp+s.LitLen]...)
		lp += s.LitLen
		if s.MatchLen == 0 {
			continue
		}
		start := len(out) - s.Dist
		if s.Dist <= 0 || start < 0 {
			return dst, false
		}
		for k := 0; k < s.MatchLen; k++ {
			out = append(out, out[start+k])
		}
	}
	if lp != len(literals) {
		return dst, false
	}
	return append(dst, out[histBase:]...), true
}
