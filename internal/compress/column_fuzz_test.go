package compress

import (
	"testing"
)

// FuzzDecodeColumn drives arbitrary bytes through every column codec.
// Two invariants: a decoder never panics (corrupt streams must fail as
// Corruptf errors), and any stream it accepts describes exactly rows
// values that survive a re-encode/re-decode round trip — so an attacker
// (or a flipped DFS bit) can at worst produce a loud error, never a
// silently wrong column.
func FuzzDecodeColumn(f *testing.F) {
	seed := func(tag byte, values []string, rows int) {
		enc, err := EncodeColumn(nil, tag, values)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(tag, uint16(rows), enc)
	}
	seed(ColPlain, []string{"a", "b", "a"}, 3)
	seed(ColDict, []string{"VOICE", "VOICE", "DATA", "VOICE"}, 4)
	seed(ColDelta, []string{"1453476600", "1453476601", "1453476603"}, 3)
	f.Add(ColDict, uint16(100), []byte{0x01, 0x00, 0x00, 0xff})
	f.Add(ColDelta, uint16(7), []byte{0x80})
	f.Add(byte(9), uint16(1), []byte("junk"))

	f.Fuzz(func(t *testing.T, tag byte, rows uint16, data []byte) {
		n := int(rows % 4096)
		vals, err := DecodeColumn(nil, tag, data, n)
		if err != nil {
			return
		}
		if len(vals) != n {
			t.Fatalf("tag %d: decoded %d values, want %d", tag, len(vals), n)
		}
		enc, err := EncodeColumn(nil, tag, vals)
		if err != nil {
			t.Fatalf("tag %d: re-encode of accepted values: %v", tag, err)
		}
		back, err := DecodeColumn(nil, tag, enc, n)
		if err != nil {
			t.Fatalf("tag %d: re-decode: %v", tag, err)
		}
		for i := range vals {
			if back[i] != vals[i] {
				t.Fatalf("tag %d: row %d = %q after round trip, want %q", tag, i, back[i], vals[i])
			}
		}
	})
}
