package gzipc

import (
	"bytes"
	"compress/gzip"
	"io"
	"strings"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	c := Codec{}
	data := []byte(strings.Repeat("telco snapshot line|1234|OK\n", 500))
	comp := c.Compress(nil, data)
	if len(comp) >= len(data) {
		t.Errorf("no compression: %d of %d", len(comp), len(data))
	}
	got, err := c.Decompress(nil, comp)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("round trip: %v", err)
	}
}

func TestInteropWithStandardGzip(t *testing.T) {
	// The wire format is plain RFC 1952: stdlib readers/writers interoperate
	// (the paper's "maximum portability" argument for GZIP, §IV-A).
	c := Codec{}
	data := []byte(strings.Repeat("interop|", 1000))

	// Our output reads with the stdlib reader.
	comp := c.Compress(nil, data)
	zr, err := gzip.NewReader(bytes.NewReader(comp))
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(zr)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("stdlib read of our output: %v", err)
	}

	// Stdlib output reads with our decoder.
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	if _, err := zw.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	got, err = c.Decompress(nil, buf.Bytes())
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("our read of stdlib output: %v", err)
	}
}

func TestGarbageRejected(t *testing.T) {
	c := Codec{}
	if _, err := c.Decompress(nil, []byte("not gzip at all")); err == nil {
		t.Error("garbage accepted")
	}
	data := []byte(strings.Repeat("x", 4096))
	comp := c.Compress(nil, data)
	if got, err := c.Decompress(nil, comp[:len(comp)/2]); err == nil && bytes.Equal(got, data) {
		t.Error("truncated stream decoded fully")
	}
}

func TestConcurrentUse(t *testing.T) {
	// The writer pool must be safe under concurrency.
	c := Codec{}
	data := []byte(strings.Repeat("pooled|", 2000))
	done := make(chan error, 8)
	for i := 0; i < 8; i++ {
		go func() {
			for j := 0; j < 20; j++ {
				got, err := c.Decompress(nil, c.Compress(nil, data))
				if err != nil || !bytes.Equal(got, data) {
					done <- err
					return
				}
			}
			done <- nil
		}()
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
