// Package gzipc adapts the standard library's gzip (DEFLATE = LZ77 +
// Huffman, RFC 1951/1952) to the SPATE codec interface. This is the codec
// the paper's SPATE implementation ships with, chosen for its availability
// in java.util.zip and its maximum portability across stream readers in the
// big-data ecosystem (§IV-A).
package gzipc

import (
	"bytes"
	"compress/gzip"
	"io"
	"sync"

	"spate/internal/compress"
)

func init() { compress.Register(Codec{}) }

// Codec is the gzip codec. The zero value is ready to use.
type Codec struct{}

// Name implements compress.Codec.
func (Codec) Name() string { return "gzip" }

var writerPool = sync.Pool{
	New: func() any {
		w, err := gzip.NewWriterLevel(io.Discard, gzip.BestCompression)
		if err != nil {
			panic(err) // static level, cannot fail
		}
		return w
	},
}

// Compress implements compress.Codec.
func (Codec) Compress(dst, src []byte) []byte {
	var buf bytes.Buffer
	buf.Grow(len(src)/4 + 64)
	w := writerPool.Get().(*gzip.Writer)
	w.Reset(&buf)
	// Writes to bytes.Buffer cannot fail.
	_, _ = w.Write(src)
	_ = w.Close()
	writerPool.Put(w)
	return append(dst, buf.Bytes()...)
}

// Decompress implements compress.Codec.
func (Codec) Decompress(dst, src []byte) ([]byte, error) {
	r, err := gzip.NewReader(bytes.NewReader(src))
	if err != nil {
		return dst, compress.Corruptf("gzip: header")
	}
	defer r.Close()
	var buf bytes.Buffer
	buf.Grow(len(src) * 4)
	if _, err := io.Copy(&buf, r); err != nil { //nolint:gosec // bounded by input
		return dst, compress.Corruptf("gzip: body")
	}
	return append(dst, buf.Bytes()...), nil
}
