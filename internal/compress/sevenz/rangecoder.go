package sevenz

// Binary adaptive range coder in the LZMA tradition: 11-bit probabilities,
// adaptation shift 5, 32-bit range with byte-wise renormalization and
// carry propagation through a cache byte.

const (
	probBits  = 11
	probInit  = 1 << (probBits - 1) // 1024 = p(0) = 0.5
	moveBits  = 5
	topValue  = 1 << 24
	probCount = 1 << probBits
)

// prob is an adaptive probability of the next bit being 0, in [0, 2048).
type prob uint16

type rangeEncoder struct {
	low       uint64
	rng       uint32
	cache     byte
	cacheSize int64
	out       []byte
}

func newRangeEncoder(out []byte) *rangeEncoder {
	return &rangeEncoder{rng: 0xFFFFFFFF, cacheSize: 1, out: out}
}

func (e *rangeEncoder) encodeBit(p *prob, bit int) {
	bound := (e.rng >> probBits) * uint32(*p)
	if bit == 0 {
		e.rng = bound
		*p += (probCount - *p) >> moveBits
	} else {
		e.low += uint64(bound)
		e.rng -= bound
		*p -= *p >> moveBits
	}
	for e.rng < topValue {
		e.shiftLow()
		e.rng <<= 8
	}
}

// encodeDirect writes n equiprobable bits of v, MSB-first.
func (e *rangeEncoder) encodeDirect(v uint32, n uint) {
	for i := int(n) - 1; i >= 0; i-- {
		e.rng >>= 1
		if v>>uint(i)&1 == 1 {
			e.low += uint64(e.rng)
		}
		for e.rng < topValue {
			e.shiftLow()
			e.rng <<= 8
		}
	}
}

func (e *rangeEncoder) shiftLow() {
	if uint32(e.low) < 0xFF000000 || e.low>>32 != 0 {
		carry := byte(e.low >> 32)
		temp := e.cache
		for {
			e.out = append(e.out, temp+carry)
			temp = 0xFF
			e.cacheSize--
			if e.cacheSize == 0 {
				break
			}
		}
		e.cache = byte(e.low >> 24)
	}
	e.cacheSize++
	e.low = e.low << 8 & 0xFFFFFFFF
}

// finish flushes the coder and returns the output buffer.
func (e *rangeEncoder) finish() []byte {
	for i := 0; i < 5; i++ {
		e.shiftLow()
	}
	return e.out
}

type rangeDecoder struct {
	in   []byte
	pos  int
	rng  uint32
	code uint32
	// eof is set when the decoder ran past the input; surfaced as corruption.
	eof bool
}

func newRangeDecoder(in []byte) *rangeDecoder {
	d := &rangeDecoder{in: in, rng: 0xFFFFFFFF}
	// The first output byte of the encoder is always 0 (cache priming).
	d.nextByte()
	for i := 0; i < 4; i++ {
		d.code = d.code<<8 | uint32(d.nextByte())
	}
	return d
}

func (d *rangeDecoder) nextByte() byte {
	if d.pos >= len(d.in) {
		d.eof = true
		return 0
	}
	b := d.in[d.pos]
	d.pos++
	return b
}

func (d *rangeDecoder) decodeBit(p *prob) int {
	bound := (d.rng >> probBits) * uint32(*p)
	var bit int
	if d.code < bound {
		d.rng = bound
		*p += (probCount - *p) >> moveBits
	} else {
		d.code -= bound
		d.rng -= bound
		*p -= *p >> moveBits
		bit = 1
	}
	for d.rng < topValue {
		d.rng <<= 8
		d.code = d.code<<8 | uint32(d.nextByte())
	}
	return bit
}

func (d *rangeDecoder) decodeDirect(n uint) uint32 {
	var v uint32
	for ; n > 0; n-- {
		d.rng >>= 1
		d.code -= d.rng
		t := 0 - (d.code >> 31) // 0xFFFFFFFF when the subtraction underflowed
		d.code += d.rng & t
		v = v<<1 | (t + 1)
		for d.rng < topValue {
			d.rng <<= 8
			d.code = d.code<<8 | uint32(d.nextByte())
		}
	}
	return v
}

// bitTree is a complete binary tree of adaptive probabilities coding fixed
// width symbols MSB-first.
type bitTree struct {
	probs []prob
	bits  uint
}

func newBitTree(bits uint) *bitTree {
	t := &bitTree{probs: make([]prob, 1<<bits), bits: bits}
	for i := range t.probs {
		t.probs[i] = probInit
	}
	return t
}

func (t *bitTree) encode(e *rangeEncoder, sym uint32) {
	m := uint32(1)
	for i := int(t.bits) - 1; i >= 0; i-- {
		b := int(sym >> uint(i) & 1)
		e.encodeBit(&t.probs[m], b)
		m = m<<1 | uint32(b)
	}
}

func (t *bitTree) decode(d *rangeDecoder) uint32 {
	m := uint32(1)
	for i := 0; i < int(t.bits); i++ {
		m = m<<1 | uint32(d.decodeBit(&t.probs[m]))
	}
	return m - 1<<t.bits
}
