// Package sevenz implements a 7z/LZMA-style codec: an LZ77 parse over an
// unbounded window entropy-coded with an adaptive binary range coder
// (context-modelled literals, length/distance slot coding, and a repeated-
// distance shortcut). It is the Table I codec with the best compression
// ratio and the slowest compression — the classic dictionary coder
// trade-off the paper describes for 7-Zip (§IV-B).
package sevenz

import (
	"spate/internal/compress"
	"spate/internal/compress/bitio"
	"spate/internal/compress/lz"
)

func init() { compress.Register(Codec{}) }

// Codec is the LZMA-style codec. The zero value is ready to use.
type Codec struct{}

// Name implements compress.Codec.
func (Codec) Name() string { return "sevenz" }

const (
	minMatch = 4
	// Length coding: [4,11] low tree, [12,19] mid tree, [20,275] high tree.
	lenLowMax  = 8
	lenMidMax  = 8
	lenHighMax = 256
	maxLen     = minMatch + lenLowMax + lenMidMax + lenHighMax - 1 // 275

	litContextBits = 8 // literal context = full previous byte (order-1)
	numDistSlots   = 64
)

// model holds every adaptive probability; one per (de)compression call.
type model struct {
	isMatch  prob
	isRep    prob
	lits     []*bitTree // 1<<litContextBits trees of 8 bits
	lenLow   *bitTree
	lenMid   *bitTree
	lenHigh  *bitTree
	lenTree  *bitTree // 2-bit selector: low/mid/high
	distSlot *bitTree
}

func newModel() *model {
	m := &model{
		isMatch:  probInit,
		isRep:    probInit,
		lenLow:   newBitTree(3),
		lenMid:   newBitTree(3),
		lenHigh:  newBitTree(8),
		lenTree:  newBitTree(2),
		distSlot: newBitTree(6),
	}
	m.lits = make([]*bitTree, 1<<litContextBits)
	for i := range m.lits {
		m.lits[i] = newBitTree(8)
	}
	return m
}

func (m *model) litTree(prevByte byte) *bitTree {
	return m.lits[prevByte>>(8-litContextBits)]
}

func (m *model) encodeLen(e *rangeEncoder, l int) {
	l -= minMatch
	switch {
	case l < lenLowMax:
		m.lenTree.encode(e, 0)
		m.lenLow.encode(e, uint32(l))
	case l < lenLowMax+lenMidMax:
		m.lenTree.encode(e, 1)
		m.lenMid.encode(e, uint32(l-lenLowMax))
	default:
		m.lenTree.encode(e, 2)
		m.lenHigh.encode(e, uint32(l-lenLowMax-lenMidMax))
	}
}

func (m *model) decodeLen(d *rangeDecoder) int {
	switch m.lenTree.decode(d) {
	case 0:
		return minMatch + int(m.lenLow.decode(d))
	case 1:
		return minMatch + lenLowMax + int(m.lenMid.decode(d))
	default:
		return minMatch + lenLowMax + lenMidMax + int(m.lenHigh.decode(d))
	}
}

// distSlotOf maps d = dist-1 to its slot (LZMA distance slots).
func distSlotOf(d uint32) uint32 {
	if d < 4 {
		return d
	}
	nb := uint32(32 - leadingZeros32(d)) // bit length of d, >= 3
	return (nb-1)*2 + d>>(nb-2)&1
}

func leadingZeros32(v uint32) int {
	n := 0
	for v&0x80000000 == 0 {
		v <<= 1
		n++
	}
	return n
}

func (m *model) encodeDist(e *rangeEncoder, dist int) {
	d := uint32(dist - 1)
	slot := distSlotOf(d)
	m.distSlot.encode(e, slot)
	if slot >= 4 {
		footerBits := slot/2 - 1
		e.encodeDirect(d&(1<<footerBits-1), uint(footerBits))
	}
}

func (m *model) decodeDist(d *rangeDecoder) int {
	slot := m.distSlot.decode(d)
	if slot < 4 {
		return int(slot) + 1
	}
	footerBits := slot/2 - 1
	base := (2 | slot&1) << footerBits
	return int(base|d.decodeDirect(uint(footerBits))) + 1
}

// Compress implements compress.Codec. Layout: uvarint original length,
// then the range-coded stream.
func (Codec) Compress(dst, src []byte) []byte {
	dst = bitio.AppendUvarint(dst, uint64(len(src)))
	if len(src) == 0 {
		return dst
	}
	seqs := lz.Parse(src, lz.Options{MinMatch: minMatch, MaxChain: 1024, Lazy: true})
	e := newRangeEncoder(dst)
	m := newModel()
	pos := 0
	lastDist := -1
	var prevByte byte
	for _, s := range seqs {
		for i := 0; i < s.LitLen; i++ {
			e.encodeBit(&m.isMatch, 0)
			b := src[pos]
			m.litTree(prevByte).encode(e, uint32(b))
			prevByte = b
			pos++
		}
		rem := s.MatchLen
		for rem > 0 {
			l := rem
			if l > maxLen {
				l = maxLen
				if rem-l < minMatch {
					l = rem - minMatch
				}
			}
			e.encodeBit(&m.isMatch, 1)
			if s.Dist == lastDist {
				e.encodeBit(&m.isRep, 1)
			} else {
				e.encodeBit(&m.isRep, 0)
				m.encodeDist(e, s.Dist)
				lastDist = s.Dist
			}
			m.encodeLen(e, l)
			pos += l
			rem -= l
			prevByte = src[pos-1]
		}
	}
	return e.finish()
}

// Decompress implements compress.Codec.
func (Codec) Decompress(dst, src []byte) ([]byte, error) {
	want, n := bitio.Uvarint(src)
	if n == 0 {
		return dst, compress.Corruptf("sevenz: length header")
	}
	if want == 0 {
		return dst, nil
	}
	out := make([]byte, 0, want)
	d := newRangeDecoder(src[n:])
	m := newModel()
	lastDist := -1
	var prevByte byte
	for len(out) < int(want) {
		if d.eof {
			return dst, compress.Corruptf("sevenz: truncated stream")
		}
		if d.decodeBit(&m.isMatch) == 0 {
			b := byte(m.litTree(prevByte).decode(d))
			out = append(out, b)
			prevByte = b
			continue
		}
		dist := lastDist
		if d.decodeBit(&m.isRep) == 0 {
			dist = m.decodeDist(d)
			lastDist = dist
		}
		l := m.decodeLen(d)
		start := len(out) - dist
		if dist <= 0 || start < 0 || len(out)+l > int(want) {
			return dst, compress.Corruptf("sevenz: invalid match dist=%d len=%d at %d", dist, l, len(out))
		}
		for k := 0; k < l; k++ {
			out = append(out, out[start+k])
		}
		prevByte = out[len(out)-1]
	}
	if d.eof {
		return dst, compress.Corruptf("sevenz: truncated stream")
	}
	return append(dst, out...), nil
}
