package sevenz

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestRangeCoderBitsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(2000)
		bits := make([]int, n)
		for i := range bits {
			// Skewed bits exercise probability adaptation.
			if rng.Float64() < 0.8 {
				bits[i] = 0
			} else {
				bits[i] = 1
			}
		}
		e := newRangeEncoder(nil)
		p := prob(probInit)
		for _, b := range bits {
			e.encodeBit(&p, b)
		}
		out := e.finish()

		d := newRangeDecoder(out)
		p = probInit
		for i, want := range bits {
			if got := d.decodeBit(&p); got != want {
				t.Fatalf("trial %d bit %d: got %d want %d", trial, i, got, want)
			}
		}
		if d.eof {
			t.Fatalf("trial %d: decoder ran past input", trial)
		}
	}
}

func TestRangeCoderSkewCompresses(t *testing.T) {
	// 10000 highly skewed bits must cost far less than 10000/8 bytes.
	e := newRangeEncoder(nil)
	p := prob(probInit)
	for i := 0; i < 10000; i++ {
		b := 0
		if i%100 == 0 {
			b = 1
		}
		e.encodeBit(&p, b)
	}
	out := e.finish()
	if len(out) > 400 {
		t.Errorf("skewed bits took %d bytes; entropy coding is broken", len(out))
	}
}

func TestDirectBitsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	e := newRangeEncoder(nil)
	vals := make([]uint32, 200)
	widths := make([]uint, 200)
	for i := range vals {
		widths[i] = 1 + uint(rng.Intn(30))
		vals[i] = rng.Uint32() & (1<<widths[i] - 1)
		e.encodeDirect(vals[i], widths[i])
	}
	out := e.finish()
	d := newRangeDecoder(out)
	for i := range vals {
		if got := d.decodeDirect(widths[i]); got != vals[i] {
			t.Fatalf("direct %d: got %x want %x (width %d)", i, got, vals[i], widths[i])
		}
	}
}

func TestBitTreeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	enc := newRangeEncoder(nil)
	tree := newBitTree(8)
	syms := make([]uint32, 500)
	for i := range syms {
		syms[i] = uint32(rng.Intn(256))
		tree.encode(enc, syms[i])
	}
	out := enc.finish()
	d := newRangeDecoder(out)
	dtree := newBitTree(8)
	for i, want := range syms {
		if got := dtree.decode(d); got != want {
			t.Fatalf("sym %d: got %d want %d", i, got, want)
		}
	}
}

func TestDistSlots(t *testing.T) {
	// Slot function must be monotone and invertible through the decoder's
	// base computation.
	prev := uint32(0)
	for _, d := range []uint32{0, 1, 2, 3, 4, 5, 7, 8, 100, 1 << 10, 1 << 20, 1<<28 - 1} {
		s := distSlotOf(d)
		if s < prev {
			t.Errorf("slot(%d) = %d < previous %d", d, s, prev)
		}
		prev = s
		if s < 4 {
			if s != d {
				t.Errorf("small slot(%d) = %d", d, s)
			}
			continue
		}
		footer := s/2 - 1
		base := (2 | s&1) << footer
		if d < base || d >= base+1<<footer {
			t.Errorf("d=%d outside slot %d coverage [%d, %d)", d, s, base, base+1<<footer)
		}
	}
}

func TestCodecLongMatchChunking(t *testing.T) {
	// Inputs with matches far beyond maxLen exercise the rep0 chunking.
	src := bytes.Repeat([]byte("x"), 5000)
	src = append(src, []byte(strings.Repeat("column|value|", 400))...)
	c := Codec{}
	got, err := c.Decompress(nil, c.Compress(nil, src))
	if err != nil || !bytes.Equal(got, src) {
		t.Fatalf("long match round trip: %v", err)
	}
}

func TestCodecQuick(t *testing.T) {
	c := Codec{}
	f := func(data []byte) bool {
		got, err := c.Decompress(nil, c.Compress(nil, data))
		return err == nil && bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkCompressText(b *testing.B) {
	data := []byte(strings.Repeat("20160122153000|35700000042|VOICE|OK|1024|0|DEF\n", 2000))
	c := Codec{}
	b.SetBytes(int64(len(data)))
	var out []byte
	for i := 0; i < b.N; i++ {
		out = c.Compress(out[:0], data)
	}
}

func BenchmarkDecompressText(b *testing.B) {
	data := []byte(strings.Repeat("20160122153000|35700000042|VOICE|OK|1024|0|DEF\n", 2000))
	c := Codec{}
	comp := c.Compress(nil, data)
	b.SetBytes(int64(len(data)))
	var out []byte
	for i := 0; i < b.N; i++ {
		var err error
		out, err = c.Decompress(out[:0], comp)
		if err != nil {
			b.Fatal(err)
		}
	}
}
