package compress_test

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"spate/internal/compress"
	_ "spate/internal/compress/all"
	"spate/internal/compress/zst"
	"spate/internal/gen"
	"spate/internal/telco"
)

func allCodecs(t *testing.T) []compress.Codec {
	t.Helper()
	names := compress.Names()
	if len(names) < 4 {
		t.Fatalf("registry has %v, want at least 4 codecs", names)
	}
	out := make([]compress.Codec, len(names))
	for i, n := range names {
		c, err := compress.Lookup(n)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = c
	}
	return out
}

func TestRegistry(t *testing.T) {
	want := []string{"gzip", "sevenz", "snappy", "zstd"}
	got := compress.Names()
	if len(got) != len(want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names() = %v, want %v", got, want)
		}
	}
	if _, err := compress.Lookup("nope"); err == nil {
		t.Error("Lookup(nope): want error")
	}
}

func corpora() map[string][]byte {
	rnd := make([]byte, 4096)
	rand.New(rand.NewSource(1)).Read(rnd)
	return map[string][]byte{
		"empty":       {},
		"one byte":    {0x42},
		"tiny":        []byte("hi"),
		"constant":    bytes.Repeat([]byte{'Z'}, 10000),
		"line repeat": []byte(strings.Repeat("201601221530|35700000042|VOICE|OK|1024\n", 300)),
		"random":      rnd,
		"alternating": bytes.Repeat([]byte("ab"), 3000),
		"all bytes":   allBytes(),
	}
}

func allBytes() []byte {
	out := make([]byte, 0, 256*4)
	for r := 0; r < 4; r++ {
		for i := 0; i < 256; i++ {
			out = append(out, byte(i))
		}
	}
	return out
}

func TestRoundTripAllCodecsAllCorpora(t *testing.T) {
	for _, c := range allCodecs(t) {
		for name, data := range corpora() {
			t.Run(c.Name()+"/"+name, func(t *testing.T) {
				comp := c.Compress(nil, data)
				got, err := c.Decompress(nil, comp)
				if err != nil {
					t.Fatalf("Decompress: %v", err)
				}
				if !bytes.Equal(got, data) {
					t.Fatalf("round trip mismatch: got %d bytes, want %d", len(got), len(data))
				}
			})
		}
	}
}

func TestRoundTripAppendsToDst(t *testing.T) {
	for _, c := range allCodecs(t) {
		prefix := []byte("PREFIX")
		data := []byte(strings.Repeat("hello world ", 50))
		comp := c.Compress(append([]byte(nil), prefix...), data)
		if !bytes.HasPrefix(comp, prefix) {
			t.Errorf("%s: Compress dropped dst prefix", c.Name())
		}
		got, err := c.Decompress(append([]byte(nil), prefix...), comp[len(prefix):])
		if err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		if !bytes.Equal(got, append(prefix, data...)) {
			t.Errorf("%s: Decompress dropped dst prefix", c.Name())
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	for _, c := range allCodecs(t) {
		c := c
		t.Run(c.Name(), func(t *testing.T) {
			f := func(data []byte) bool {
				got, err := c.Decompress(nil, c.Compress(nil, data))
				return err == nil && bytes.Equal(got, data)
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
				t.Error(err)
			}
		})
	}
}

func TestDecompressRejectsGarbage(t *testing.T) {
	garbage := [][]byte{
		{},
		{0xFF},
		{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF},
		[]byte("this is definitely not compressed data"),
	}
	for _, c := range allCodecs(t) {
		for i, g := range garbage {
			if _, err := c.Decompress(nil, g); err == nil {
				// Tiny inputs may legitimately decode under raw framing;
				// only flag when clearly invalid headers slip through.
				if i <= 1 && c.Name() != "snappy" && c.Name() != "zstd" && c.Name() != "sevenz" {
					t.Errorf("%s: accepted garbage %d", c.Name(), i)
				}
			}
		}
	}
}

func TestDecompressRejectsTruncation(t *testing.T) {
	data := []byte(strings.Repeat("the quick brown fox|12345|OK\n", 100))
	for _, c := range allCodecs(t) {
		comp := c.Compress(nil, data)
		for _, cut := range []int{len(comp) / 4, len(comp) / 2, len(comp) - 1} {
			got, err := c.Decompress(nil, comp[:cut])
			if err == nil && bytes.Equal(got, data) {
				t.Errorf("%s: truncated to %d bytes still decoded fully", c.Name(), cut)
			}
		}
	}
}

// telcoSample renders one generated CDR snapshot to text — the actual
// payload SPATE compresses.
func telcoSample(t testing.TB) []byte {
	t.Helper()
	cfg := gen.DefaultConfig(0.002)
	cfg.CDRPerEpoch = 400
	g := gen.New(cfg)
	var buf bytes.Buffer
	tab := g.CDRTable(telco.EpochOf(cfg.Start.Add(10 * 30 * time.Minute)))
	if err := tab.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestTable1RatioOrderingOnTelcoData(t *testing.T) {
	// The paper's Table I ordering: sevenz(7z) best ratio, gzip and zstd
	// close behind, snappy roughly half of gzip.
	data := telcoSample(t)
	ratio := map[string]float64{}
	for _, c := range allCodecs(t) {
		comp := c.Compress(nil, data)
		got, err := c.Decompress(nil, comp)
		if err != nil || !bytes.Equal(got, data) {
			t.Fatalf("%s: round trip failed on telco data: %v", c.Name(), err)
		}
		ratio[c.Name()] = compress.Ratio(len(data), len(comp))
	}
	t.Logf("ratios on %d bytes of CDR text: %+v", len(data), ratio)
	if ratio["sevenz"] < ratio["gzip"] {
		t.Errorf("sevenz ratio %.2f should be >= gzip %.2f", ratio["sevenz"], ratio["gzip"])
	}
	if ratio["snappy"] >= ratio["gzip"]*0.8 {
		t.Errorf("snappy ratio %.2f should be well below gzip %.2f", ratio["snappy"], ratio["gzip"])
	}
	if ratio["zstd"] < ratio["gzip"]*0.6 {
		t.Errorf("zstd ratio %.2f too far below gzip %.2f", ratio["zstd"], ratio["gzip"])
	}
	for n, r := range ratio {
		if r < 1 {
			t.Errorf("%s expands telco data (ratio %.2f)", n, r)
		}
	}
}

func TestZstdDictionaryImprovesSmallBlocks(t *testing.T) {
	// Dictionary compression must help on small blocks that share structure
	// with the training samples.
	full := telcoSample(t)
	lines := bytes.SplitAfter(full, []byte{'\n'})
	if len(lines) < 60 {
		t.Skip("sample too small")
	}
	var samples [][]byte
	for i := 0; i+10 <= 50; i += 10 {
		samples = append(samples, bytes.Join(lines[i:i+10], nil))
	}
	dict := zst.Train(samples, 16<<10)
	if len(dict) == 0 {
		t.Fatal("Train returned empty dictionary")
	}
	block := bytes.Join(lines[50:58], nil)
	plain := zst.New(nil)
	trained := zst.New(dict)
	lp := len(plain.Compress(nil, block))
	lt := len(trained.Compress(nil, block))
	got, err := trained.Decompress(nil, trained.Compress(nil, block))
	if err != nil || !bytes.Equal(got, block) {
		t.Fatalf("dict round trip failed: %v", err)
	}
	if lt >= lp {
		t.Errorf("dictionary did not help: trained %d vs plain %d bytes", lt, lp)
	}
	// A dict-compressed block must not decode without the dictionary.
	if _, err := plain.Decompress(nil, trained.Compress(nil, block)); err == nil {
		t.Error("dict block decoded without dictionary")
	}
}

func TestRatioHelper(t *testing.T) {
	if got := compress.Ratio(100, 10); got != 10 {
		t.Errorf("Ratio = %v", got)
	}
	if got := compress.Ratio(100, 0); got != 0 {
		t.Errorf("Ratio(zero) = %v", got)
	}
}
