// Package snap implements a SNAPPY-style byte-oriented LZ codec: greedy
// single-probe hash matching, tag-byte framing and no entropy stage. Like
// Google's Snappy it "aims for maximum compression speed as opposed to
// maximum compression ratios", producing output 20-100% bigger than the
// entropy-coding codecs (paper §IV-B) — the Table I row whose ratio is
// roughly half of GZIP's.
package snap

import (
	"spate/internal/compress"
	"spate/internal/compress/bitio"
)

func init() { compress.Register(Codec{}) }

// Codec is the snappy-style codec. The zero value is ready to use.
type Codec struct{}

// Name implements compress.Codec.
func (Codec) Name() string { return "snappy" }

// Tag byte low bits.
const (
	tagLiteral = 0x00
	tagCopy1   = 0x01 // 11-bit offset, 4..11 byte length
	tagCopy2   = 0x02 // 16-bit offset, 1..64 byte length
)

const (
	maxOffset   = 1 << 16 // copy2 reach
	minMatch    = 4
	maxCopy2Len = 64
	hashBits    = 14
)

func hash4(v uint32) uint32 { return v * 2654435761 >> (32 - hashBits) }

func load32(b []byte, i int) uint32 {
	return uint32(b[i]) | uint32(b[i+1])<<8 | uint32(b[i+2])<<16 | uint32(b[i+3])<<24
}

// Compress implements compress.Codec. The layout is a uvarint of the
// original length followed by tagged literal runs and copies.
func (Codec) Compress(dst, src []byte) []byte {
	dst = bitio.AppendUvarint(dst, uint64(len(src)))
	if len(src) == 0 {
		return dst
	}
	var table [1 << hashBits]int32
	for i := range table {
		table[i] = -1
	}
	litStart := 0
	i := 0
	for i+minMatch <= len(src) {
		h := hash4(load32(src, i))
		cand := table[h]
		table[h] = int32(i)
		if cand < 0 || i-int(cand) >= maxOffset || load32(src, int(cand)) != load32(src, i) {
			i++
			continue
		}
		// Extend the match.
		j := int(cand)
		l := minMatch
		for i+l < len(src) && src[j+l] == src[i+l] {
			l++
		}
		dst = emitLiteral(dst, src[litStart:i])
		dst = emitCopy(dst, i-j, l)
		// Insert a couple of positions inside the match to seed future hits.
		for k := i + 1; k < i+l && k+minMatch <= len(src) && k < i+4; k++ {
			table[hash4(load32(src, k))] = int32(k)
		}
		i += l
		litStart = i
	}
	return emitLiteral(dst, src[litStart:])
}

func emitLiteral(dst, lit []byte) []byte {
	for len(lit) > 0 {
		n := len(lit)
		switch {
		case n <= 60:
			dst = append(dst, byte(n-1)<<2|tagLiteral)
		case n < 1<<8:
			dst = append(dst, 60<<2|tagLiteral, byte(n-1))
		case n < 1<<16:
			dst = append(dst, 61<<2|tagLiteral, byte(n-1), byte((n-1)>>8))
		default:
			n = 1 << 16 // chunk long literals
			dst = append(dst, 61<<2|tagLiteral, byte(n-1), byte((n-1)>>8))
		}
		dst = append(dst, lit[:n]...)
		lit = lit[n:]
	}
	return dst
}

func emitCopy(dst []byte, offset, length int) []byte {
	// Long matches are chunked into <=64-byte copy2 elements, with a
	// copy1 fast path for short nearby matches.
	for length > 0 {
		if length >= minMatch && length <= 11 && offset < 1<<11 {
			dst = append(dst,
				byte(offset>>8)<<5|byte(length-4)<<2|tagCopy1,
				byte(offset))
			return dst
		}
		n := length
		if n > maxCopy2Len {
			n = maxCopy2Len
			// Avoid leaving a tail shorter than minMatch (still legal for
			// copy2 but keeps parsing efficient).
			if length-n < minMatch {
				n = length - minMatch
			}
		}
		dst = append(dst, byte(n-1)<<2|tagCopy2, byte(offset), byte(offset>>8))
		length -= n
	}
	return dst
}

// Decompress implements compress.Codec.
func (Codec) Decompress(dst, src []byte) ([]byte, error) {
	want, n := bitio.Uvarint(src)
	if n == 0 {
		return dst, compress.Corruptf("snappy: length header")
	}
	src = src[n:]
	base := len(dst)
	if cap(dst)-base < int(want) {
		grown := make([]byte, base, base+int(want))
		copy(grown, dst)
		dst = grown
	}
	for len(src) > 0 {
		tag := src[0]
		switch tag & 3 {
		case tagLiteral:
			l := int(tag >> 2)
			adv := 1
			switch l {
			case 60:
				if len(src) < 2 {
					return dst, compress.Corruptf("snappy: literal header")
				}
				l = int(src[1])
				adv = 2
			case 61:
				if len(src) < 3 {
					return dst, compress.Corruptf("snappy: literal header")
				}
				l = int(src[1]) | int(src[2])<<8
				adv = 3
			case 62, 63:
				return dst, compress.Corruptf("snappy: unsupported literal tag")
			}
			l++
			if len(src) < adv+l {
				return dst, compress.Corruptf("snappy: literal body")
			}
			dst = append(dst, src[adv:adv+l]...)
			src = src[adv+l:]
		case tagCopy1:
			if len(src) < 2 {
				return dst, compress.Corruptf("snappy: copy1")
			}
			length := 4 + int(tag>>2&7)
			offset := int(tag>>5)<<8 | int(src[1])
			var err error
			dst, err = appendCopy(dst, base, offset, length)
			if err != nil {
				return dst, err
			}
			src = src[2:]
		case tagCopy2:
			if len(src) < 3 {
				return dst, compress.Corruptf("snappy: copy2")
			}
			length := 1 + int(tag>>2)
			offset := int(src[1]) | int(src[2])<<8
			var err error
			dst, err = appendCopy(dst, base, offset, length)
			if err != nil {
				return dst, err
			}
			src = src[3:]
		default:
			return dst, compress.Corruptf("snappy: reserved tag")
		}
		if len(dst)-base > int(want) {
			return dst, compress.Corruptf("snappy: output overrun")
		}
	}
	if len(dst)-base != int(want) {
		return dst, compress.Corruptf("snappy: short output: got %d want %d", len(dst)-base, want)
	}
	return dst, nil
}

func appendCopy(dst []byte, base, offset, length int) ([]byte, error) {
	start := len(dst) - offset
	if offset == 0 || start < base {
		return dst, compress.Corruptf("snappy: invalid offset %d", offset)
	}
	for k := 0; k < length; k++ {
		dst = append(dst, dst[start+k])
	}
	return dst, nil
}
