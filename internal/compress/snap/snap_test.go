package snap

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, data []byte) []byte {
	t.Helper()
	c := Codec{}
	comp := c.Compress(nil, data)
	got, err := c.Decompress(nil, comp)
	if err != nil {
		t.Fatalf("decompress: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("round trip mismatch: %d vs %d bytes", len(got), len(data))
	}
	return comp
}

func TestEmptyAndTiny(t *testing.T) {
	roundTrip(t, nil)
	roundTrip(t, []byte("a"))
	roundTrip(t, []byte("abc"))
}

func TestLiteralChunking(t *testing.T) {
	// Incompressible runs longer than the 16-bit literal limit chunk.
	data := make([]byte, 100_000)
	rand.New(rand.NewSource(1)).Read(data)
	comp := roundTrip(t, data)
	if len(comp) > len(data)+len(data)/100+16 {
		t.Errorf("incompressible expansion too large: %d for %d", len(comp), len(data))
	}
}

func TestCopy1FastPath(t *testing.T) {
	// Short nearby matches take the 2-byte copy1 form: verify the encoder
	// uses it by checking output size on a best-case input.
	data := bytes.Repeat([]byte("abcdefgh"), 200) // dist 8, matches of 8+
	comp := roundTrip(t, data)
	if len(comp) > len(data)/4 {
		t.Errorf("near repeats compressed to %d of %d", len(comp), len(data))
	}
}

func TestLongMatchChunking(t *testing.T) {
	// A 10KB run forces >64-byte copy chunking.
	roundTrip(t, bytes.Repeat([]byte{'Z'}, 10_000))
}

func TestFarMatchesBeyondWindowAreLiterals(t *testing.T) {
	// Content repeating at a distance over 64KB cannot be referenced.
	block := make([]byte, 1000)
	rand.New(rand.NewSource(2)).Read(block)
	data := append(append(append([]byte{}, block...), make([]byte, 70_000)...), block...)
	roundTrip(t, data)
}

func TestQuickRoundTrip(t *testing.T) {
	c := Codec{}
	f := func(data []byte) bool {
		got, err := c.Decompress(nil, c.Compress(nil, data))
		return err == nil && bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestCorruptInputs(t *testing.T) {
	c := Codec{}
	data := []byte(strings.Repeat("telco|row|", 100))
	comp := c.Compress(nil, data)
	cases := map[string][]byte{
		"empty":            {},
		"half":             comp[:len(comp)/2],
		"bad length":       append([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F}, comp...),
		"truncated tag":    comp[:len(comp)-1],
		"reserved literal": {2, 62 << 2}, // length=2, tag with l=62
	}
	for name, in := range cases {
		if got, err := c.Decompress(nil, in); err == nil && bytes.Equal(got, data) {
			t.Errorf("%s: corrupt input decoded fully", name)
		}
	}
}

func TestZeroOffsetRejected(t *testing.T) {
	// Hand-crafted copy with offset 0 must be rejected.
	in := []byte{4, 0<<2 | 0, 'a', byte(0)<<2 | 1, 0} // len 4; 1 literal 'a'; copy1 off=0
	c := Codec{}
	if _, err := c.Decompress(nil, in); err == nil {
		t.Error("zero offset accepted")
	}
}

func BenchmarkCompress(b *testing.B) {
	data := []byte(strings.Repeat("20160122153000|35700000042|VOICE|OK|1024|0|DEF\n", 2000))
	c := Codec{}
	b.SetBytes(int64(len(data)))
	var out []byte
	for i := 0; i < b.N; i++ {
		out = c.Compress(out[:0], data)
	}
}

func BenchmarkDecompress(b *testing.B) {
	data := []byte(strings.Repeat("20160122153000|35700000042|VOICE|OK|1024|0|DEF\n", 2000))
	c := Codec{}
	comp := c.Compress(nil, data)
	b.SetBytes(int64(len(data)))
	var out []byte
	for i := 0; i < b.N; i++ {
		var err error
		out, err = c.Decompress(out[:0], comp)
		if err != nil {
			b.Fatal(err)
		}
	}
}
