// Package shahed implements the SHAHED baseline of the paper's evaluation
// (§VII-A): the spatio-temporal aggregate index of SHAHED (Eldawy et al.,
// ICDE 2015), isolated from SpatialHadoop — a temporal hierarchy whose
// nodes carry spatial aggregate summaries over **uncompressed** data, with
// no compression and no decaying. It is "appropriate for online querying
// and visualization" and serves as the state-of-the-art response-time
// yardstick that SPATE matches with an order of magnitude less storage.
package shahed

import (
	"fmt"
	"time"

	"spate/internal/dfs"
	"spate/internal/geo"
	"spate/internal/highlights"
	"spate/internal/index"
	"spate/internal/snapshot"
	"spate/internal/telco"
)

// Store is a SHAHED-style ingestion target.
type Store struct {
	fs    *dfs.Cluster
	tree  *index.Tree
	cfg   highlights.Config
	cells map[int64]geo.Point
	cellQ *geo.QuadTree
}

// Open creates a SHAHED store over a cluster with the cell inventory.
func Open(fs *dfs.Cluster, cellTable *telco.Table) (*Store, error) {
	s := &Store{
		fs:    fs,
		tree:  index.New(),
		cfg:   highlights.DefaultConfig(),
		cells: make(map[int64]geo.Point),
	}
	idIdx := cellTable.Schema.FieldIndex(telco.AttrCellID)
	xIdx := cellTable.Schema.FieldIndex("x_km")
	yIdx := cellTable.Schema.FieldIndex("y_km")
	if idIdx < 0 || xIdx < 0 || yIdx < 0 {
		return nil, fmt.Errorf("shahed: cell table %q lacks cell_id/x_km/y_km", cellTable.Schema.Name)
	}
	bounds := geo.NewRect(0, 0, 1, 1)
	first := true
	for _, r := range cellTable.Rows {
		pt := geo.Point{X: r[xIdx].Float64(), Y: r[yIdx].Float64()}
		s.cells[r[idIdx].Int64()] = pt
		if first {
			bounds = geo.NewRect(pt.X, pt.Y, pt.X+1e-6, pt.Y+1e-6)
			first = false
		} else {
			bounds = bounds.Expand(pt)
		}
	}
	s.cellQ = geo.NewQuadTree(bounds, 0)
	for id, pt := range s.cells {
		s.cellQ.Insert(geo.Item{Pt: pt, ID: id, Weight: 1})
	}
	if !fs.Exists("/shahed/meta/CELL") {
		if err := fs.WriteFile("/shahed/meta/CELL", []byte(cellTable.Text())); err != nil {
			return nil, fmt.Errorf("shahed: persist cell table: %w", err)
		}
	}
	return s, nil
}

// FS returns the underlying cluster.
func (s *Store) FS() *dfs.Cluster { return s.fs }

// Tree exposes the temporal aggregate index.
func (s *Store) Tree() *index.Tree { return s.tree }

// Report describes one SHAHED ingestion.
type Report struct {
	Epoch     telco.Epoch
	Rows      int
	Bytes     int64
	IndexTime time.Duration
	Total     time.Duration
}

func dataPath(e telco.Epoch, table string) string {
	return "/shahed" + snapshot.DataPath(e, table)
}

// Ingest stores each table uncompressed and updates the aggregate index
// (temporal tree + per-node spatial summaries).
func (s *Store) Ingest(snap *snapshot.Snapshot) (Report, error) {
	start := time.Now()
	rep := Report{Epoch: snap.Epoch, Rows: snap.Rows()}
	refs := make(map[string]string)
	period := telco.TimeRange{From: snap.Epoch.Start(), To: snap.Epoch.End()}
	sum := highlights.NewSummary(period)
	for _, name := range snap.TableNames() {
		text, err := snap.EncodeTable(name)
		if err != nil {
			return rep, fmt.Errorf("shahed: encode %s: %w", name, err)
		}
		path := dataPath(snap.Epoch, name)
		if err := s.fs.WriteFile(path, text); err != nil {
			return rep, fmt.Errorf("shahed: store %s: %w", name, err)
		}
		refs[name] = path
		rep.Bytes += int64(len(text))
		sum.AddTable(s.cfg, snap.Table(name))
	}
	tIndex := time.Now()
	leaf, completed, err := s.tree.Append(snap.Epoch, refs, rep.Bytes, rep.Bytes)
	if err != nil {
		return rep, err
	}
	leaf.Summary = sum
	for _, n := range completed {
		s.seal(n)
	}
	rep.IndexTime = time.Since(tIndex)
	rep.Total = time.Since(start)
	return rep, nil
}

// seal merges child summaries into a completed node. SHAHED keeps every
// resolution's aggregates (no decay, no eviction of leaf summaries).
func (s *Store) seal(n *index.Node) {
	parts := make([]*highlights.Summary, 0, len(n.Children))
	for _, c := range n.Children {
		parts = append(parts, c.Summary)
	}
	n.Summary = highlights.Merge(n.Period, parts...)
}

// FinishIngest seals the open right-most path.
func (s *Store) FinishIngest() {
	for _, n := range s.tree.FinishIngest() {
		s.seal(n)
	}
}

// CellsInBox returns cell IDs located inside box.
func (s *Store) CellsInBox(box geo.Rect) []int64 {
	items := s.cellQ.Query(box, nil)
	out := make([]int64, len(items))
	for i, it := range items {
		out[i] = it.ID
	}
	return out
}

// Aggregate answers a spatio-temporal aggregate query from the index: the
// merged summary of the window (leaf summaries, since SHAHED retains all of
// them), restricted to the box's cells.
func (s *Store) Aggregate(w telco.TimeRange, box geo.Rect) (*highlights.Summary, error) {
	leaves := s.tree.LeavesIn(w, nil)
	if len(leaves) == 0 {
		return highlights.NewSummary(w), nil
	}
	parts := make([]*highlights.Summary, 0, len(leaves))
	for _, l := range leaves {
		parts = append(parts, l.Summary)
	}
	merged := highlights.Merge(w, parts...)
	if box == (geo.Rect{}) {
		return merged, nil
	}
	inBox := make(map[int64]bool)
	for _, id := range s.CellsInBox(box) {
		inBox[id] = true
	}
	out := highlights.NewSummary(w)
	out.Cat = merged.Cat
	for id, cs := range merged.Cells {
		if !inBox[id] {
			continue
		}
		out.Rows += cs.Rows
		out.Cells[id] = cs
		for ref, st := range cs.Num {
			agg := out.Num[ref]
			if agg == nil {
				agg = &highlights.Stats{}
				out.Num[ref] = agg
			}
			agg.Merge(st)
		}
	}
	return out, nil
}

// Scan reads the window's snapshots (pruned by the temporal index, unlike
// RAW) and invokes fn per table. Data is uncompressed text.
func (s *Store) Scan(w telco.TimeRange, tables []string, fn func(string, *telco.Table) error) error {
	want := func(name string) bool {
		if len(tables) == 0 {
			return true
		}
		for _, t := range tables {
			if t == name {
				return true
			}
		}
		return false
	}
	for _, leaf := range s.tree.LeavesIn(w, nil) {
		for name, ref := range leaf.DataRefs {
			if !want(name) {
				continue
			}
			data, err := s.fs.ReadFile(ref)
			if err != nil {
				return fmt.Errorf("shahed: read %s: %w", ref, err)
			}
			tab, err := snapshot.DecodeTable(name, data)
			if err != nil {
				return fmt.Errorf("shahed: decode %s: %w", ref, err)
			}
			filtered := telco.NewTable(tab.Schema)
			tsIdx := tab.Schema.FieldIndex(telco.AttrTS)
			for _, r := range tab.Rows {
				if tsIdx < 0 || r[tsIdx].IsNull() || w.Contains(r[tsIdx].Time()) {
					filtered.Rows = append(filtered.Rows, r)
				}
			}
			if filtered.Len() == 0 {
				continue
			}
			if err := fn(name, filtered); err != nil {
				return err
			}
		}
	}
	return nil
}

// Space returns the bytes SHAHED occupies (logical, pre-replication),
// including an estimate of its aggregate index.
func (s *Store) Space() (data, idx int64) {
	for _, fi := range s.fs.List("/shahed/") {
		data += fi.Size
	}
	st := s.tree.Stats()
	return data, st.SummaryBytes
}
