package shahed

import (
	"testing"
	"time"

	"spate/internal/dfs"
	"spate/internal/gen"
	"spate/internal/geo"
	"spate/internal/index"
	"spate/internal/snapshot"
	"spate/internal/telco"
)

func newWorld(t *testing.T) (*gen.Generator, *Store, gen.Config) {
	t.Helper()
	cfg := gen.DefaultConfig(0.002)
	cfg.Antennas = 15
	cfg.Users = 100
	cfg.CDRPerEpoch = 60
	cfg.NMSReportsPerCell = 0.5
	g := gen.New(cfg)
	fs, err := dfs.NewCluster(t.TempDir(), dfs.Config{BlockSize: 1 << 20, DataNodes: 2, Replication: 1})
	if err != nil {
		t.Fatal(err)
	}
	s, err := Open(fs, g.CellTable())
	if err != nil {
		t.Fatal(err)
	}
	return g, s, cfg
}

func ingest(t *testing.T, g *gen.Generator, s *Store, start time.Time, n int) int {
	t.Helper()
	rows := 0
	e0 := telco.EpochOf(start)
	for i := 0; i < n; i++ {
		sn := snapshot.New(e0 + telco.Epoch(i))
		sn.Add(g.CDRTable(sn.Epoch))
		sn.Add(g.NMSTable(sn.Epoch))
		rep, err := s.Ingest(sn)
		if err != nil {
			t.Fatal(err)
		}
		rows += rep.Rows
	}
	return rows
}

func TestAggregateMatchesIngest(t *testing.T) {
	g, s, cfg := newWorld(t)
	total := ingest(t, g, s, cfg.Start, 4)
	w := telco.NewTimeRange(cfg.Start, cfg.Start.Add(2*time.Hour))
	sum, err := s.Aggregate(w, geo.Rect{})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Rows != int64(total) {
		t.Errorf("aggregate rows = %d, ingested %d", sum.Rows, total)
	}
}

func TestAggregateSpatialRestriction(t *testing.T) {
	g, s, cfg := newWorld(t)
	ingest(t, g, s, cfg.Start, 2)
	w := telco.NewTimeRange(cfg.Start, cfg.Start.Add(time.Hour))
	all, err := s.Aggregate(w, geo.Rect{})
	if err != nil {
		t.Fatal(err)
	}
	box := geo.NewRect(0, 0, 40, 38)
	sub, err := s.Aggregate(w, box)
	if err != nil {
		t.Fatal(err)
	}
	if sub.Rows == 0 || sub.Rows >= all.Rows {
		t.Errorf("box rows = %d vs all %d", sub.Rows, all.Rows)
	}
	inBox := map[int64]bool{}
	for _, id := range s.CellsInBox(box) {
		inBox[id] = true
	}
	for id := range sub.Cells {
		if !inBox[id] {
			t.Errorf("cell %d outside box in aggregate", id)
		}
	}
}

func TestLeafSummariesRetainedAcrossDays(t *testing.T) {
	// Unlike SPATE, SHAHED keeps every leaf summary (no decay, no
	// ephemeral drop at day seal).
	g, s, cfg := newWorld(t)
	ingest(t, g, s, cfg.Start, telco.EpochsPerDay+2)
	for _, l := range s.Tree().NodesAtLevel(index.LevelEpoch) {
		if l.Summary == nil {
			t.Fatal("leaf summary missing")
		}
	}
}

func TestScanPrunesByIndex(t *testing.T) {
	g, s, cfg := newWorld(t)
	ingest(t, g, s, cfg.Start, 4)
	w := telco.NewTimeRange(cfg.Start.Add(30*time.Minute), cfg.Start.Add(60*time.Minute))
	before := s.FS().BytesRead()
	rows := 0
	err := s.Scan(w, []string{"CDR"}, func(name string, tab *telco.Table) error {
		rows += tab.Len()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if rows == 0 {
		t.Error("no rows scanned")
	}
	// Index pruning: only the window's snapshot files are read, so bytes
	// read must be well under the full dataset.
	cost := s.FS().BytesRead() - before
	var totalData int64
	for _, fi := range s.FS().List("/shahed/spate/data/") {
		totalData += fi.Size
	}
	if cost >= totalData {
		t.Errorf("scan read %d bytes of %d total: no pruning", cost, totalData)
	}
}

func TestFinishIngestSeals(t *testing.T) {
	g, s, cfg := newWorld(t)
	ingest(t, g, s, cfg.Start, 2)
	s.FinishIngest()
	root := s.Tree().Root()
	if len(root.Children) == 0 || root.Children[0].Summary == nil {
		t.Error("year not sealed")
	}
}

func TestSpaceAccounting(t *testing.T) {
	g, s, cfg := newWorld(t)
	ingest(t, g, s, cfg.Start, 2)
	s.FinishIngest() // seal open periods so the index has summaries
	data, idx := s.Space()
	if data == 0 || idx == 0 {
		t.Errorf("space = %d/%d", data, idx)
	}
}

func TestOpenValidatesCellTable(t *testing.T) {
	fs, err := dfs.NewCluster(t.TempDir(), dfs.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Open(fs, telco.NewTable(telco.NMSSchema)); err == nil {
		t.Error("accepted non-CELL table")
	}
}
