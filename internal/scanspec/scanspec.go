// Package scanspec defines the pushdown contract between the SQL layer and
// the storage engine: which columns a query touches, which conjunctive
// predicates the scan may apply, and which simple aggregates it may fold
// chunk-side instead of materializing rows. The types are shared by
// internal/sqlengine (which compiles WHERE clauses and SELECT lists into a
// Spec), internal/core (which evaluates a Spec against column streams) and
// internal/cluster (which forwards a Spec through /rpc/explore so shards
// ship partial aggregates instead of rows). core.ScanSpec aliases Spec.
//
// Predicate evaluation here must stay exactly equivalent to the SQL
// engine's row-level evaluation of the same conjunct: the engine only
// compiles a comparison into a Pred when both agree (non-null literal,
// non-time column, plain column-op-literal shape), and Pred.Eval mirrors
// sqlengine's NULL-rejecting telco.Value.Compare semantics for that shape.
package scanspec

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"spate/internal/telco"
)

// Pred is one conjunctive predicate: column op literal. Op is one of
// = != < <= > >=. The literal travels in wire form with an explicit kind
// ("int", "float" or "str") so it reconstructs bit-for-bit across the
// cluster RPC boundary.
type Pred struct {
	Col  string `json:"col"`
	Op   string `json:"op"`
	Kind string `json:"kind"`
	Val  string `json:"val"`
}

// String renders the predicate for EXPLAIN plans.
func (p Pred) String() string {
	if p.Kind == "str" {
		return p.Col + p.Op + "'" + p.Val + "'"
	}
	return p.Col + p.Op + p.Val
}

// Literal reconstructs the comparison literal as a typed value.
func (p Pred) Literal() telco.Value {
	switch p.Kind {
	case "int":
		i, err := strconv.ParseInt(p.Val, 10, 64)
		if err != nil {
			return telco.Null
		}
		return telco.Int(i)
	case "float":
		f, err := strconv.ParseFloat(p.Val, 64)
		if err != nil {
			return telco.Null
		}
		return telco.Float(f)
	case "str":
		return telco.String(p.Val)
	}
	return telco.Null
}

// Eval reports whether a row value satisfies the predicate. A null row
// value never satisfies it (SQL three-valued logic: the conjunct is
// unknown, so the row is filtered), matching the SQL engine's evaluator.
func (p Pred) Eval(v telco.Value) bool {
	if v.IsNull() {
		return false
	}
	lit := p.Literal()
	if lit.IsNull() {
		return false
	}
	c := v.Compare(lit)
	switch p.Op {
	case "=":
		return c == 0
	case "!=":
		return c != 0
	case "<":
		return c < 0
	case "<=":
		return c <= 0
	case ">":
		return c > 0
	case ">=":
		return c >= 0
	}
	return false
}

// IntLiteral returns the literal as an int64 when the predicate compares
// against an integer — the only shape integer zone maps may prune.
func (p Pred) IntLiteral() (int64, bool) {
	if p.Kind != "int" {
		return 0, false
	}
	i, err := strconv.ParseInt(p.Val, 10, 64)
	return i, err == nil
}

// ZonePrune reports whether an integer zone map [min,max] proves no value
// of the column can satisfy the predicate — the chunk is skippable without
// decoding the column. Only integer literals prune: the zone holds exact
// int64 bounds and the comparison must match Pred.Eval's integer compare.
func (p Pred) ZonePrune(min, max int64) bool {
	lit, ok := p.IntLiteral()
	if !ok {
		return false
	}
	switch p.Op {
	case "=":
		return lit < min || lit > max
	case "!=":
		return min == max && min == lit
	case "<":
		return min >= lit
	case "<=":
		return min > lit
	case ">":
		return max <= lit
	case ">=":
		return max < lit
	}
	return false
}

// ZoneAllMatch reports whether an integer zone map [min,max] proves every
// value of the column satisfies the predicate — the whole chunk matches
// and an aggregate over it can be answered from metadata alone. The zone's
// presence already guarantees the column has no nulls in the chunk.
func (p Pred) ZoneAllMatch(min, max int64) bool {
	lit, ok := p.IntLiteral()
	if !ok {
		return false
	}
	switch p.Op {
	case "=":
		return min == max && min == lit
	case "!=":
		return max < lit || min > lit
	case "<":
		return max < lit
	case "<=":
		return max <= lit
	case ">":
		return min > lit
	case ">=":
		return min >= lit
	}
	return false
}

// Agg is one pushed-down aggregate. Fn is COUNT, SUM, MIN or MAX; an empty
// Col means COUNT(*). SUM is only pushed down over integer columns so the
// partial sums stay exact under any association order (floating-point sums
// depend on addition order and would break bit-for-bit row-path parity).
type Agg struct {
	Fn  string `json:"fn"`
	Col string `json:"col,omitempty"`
}

// String renders the aggregate for EXPLAIN plans.
func (a Agg) String() string {
	if a.Col == "" {
		return a.Fn + "(*)"
	}
	return a.Fn + "(" + a.Col + ")"
}

// Spec is the pushdown contract for one table scan.
//
// Columns lists the columns the caller needs materialized (nil keeps every
// column, an explicit empty, non-nil slice keeps none beyond bookkeeping).
// Preds are conjunctive filters the scan applies before materializing a
// row. When Aggs is non-empty the scan returns partial aggregates instead
// of rows, optionally grouped by the single low-cardinality GroupBy column.
type Spec struct {
	Columns []string `json:"columns,omitempty"`
	Preds   []Pred   `json:"preds,omitempty"`
	Aggs    []Agg    `json:"aggs,omitempty"`
	GroupBy string   `json:"group_by,omitempty"`
	// RequireTS marks that the WHERE clause carried a timestamp conjunct:
	// rows without a timestamp are dropped (a NULL comparison filters the
	// row in SQL), whereas a bare window scan keeps them.
	RequireTS bool `json:"require_ts,omitempty"`
	// Window is the exact half-open row-level timestamp interval the
	// WHERE clause's timestamp conjuncts denote (nil when they impose no
	// bound). The scan hint window stays a conservative superset used for
	// leaf and chunk selection; this window decides row membership, so
	// aggregate pushdown reproduces the row path bit for bit.
	Window *TimeWindow `json:"window,omitempty"`
}

// TimeWindow is an exact half-open timestamp interval in Unix nanoseconds.
// An unset side is unbounded.
type TimeWindow struct {
	From    int64 `json:"from,omitempty"`
	HasFrom bool  `json:"has_from,omitempty"`
	To      int64 `json:"to,omitempty"`
	HasTo   bool  `json:"has_to,omitempty"`
}

// Contains reports whether instant ns lies inside the window. A nil
// window contains everything.
func (tw *TimeWindow) Contains(ns int64) bool {
	if tw == nil {
		return true
	}
	if tw.HasFrom && ns < tw.From {
		return false
	}
	if tw.HasTo && ns >= tw.To {
		return false
	}
	return true
}

// ContainsRange reports whether every instant in [min, max] lies inside.
func (tw *TimeWindow) ContainsRange(min, max int64) bool {
	return tw.Contains(min) && tw.Contains(max)
}

// OverlapsRange reports whether some instant in [min, max] lies inside.
func (tw *TimeWindow) OverlapsRange(min, max int64) bool {
	if tw == nil {
		return true
	}
	if tw.HasFrom && max < tw.From {
		return false
	}
	if tw.HasTo && min >= tw.To {
		return false
	}
	return true
}

// TightenFrom raises the window's lower bound to ns if that narrows it,
// returning the (possibly newly allocated) window.
func (tw *TimeWindow) TightenFrom(ns int64) *TimeWindow {
	if tw == nil {
		tw = &TimeWindow{}
	}
	if !tw.HasFrom || ns > tw.From {
		tw.From, tw.HasFrom = ns, true
	}
	return tw
}

// TightenTo lowers the window's upper bound to ns if that narrows it.
func (tw *TimeWindow) TightenTo(ns int64) *TimeWindow {
	if tw == nil {
		tw = &TimeWindow{}
	}
	if !tw.HasTo || ns < tw.To {
		tw.To, tw.HasTo = ns, true
	}
	return tw
}

// IsAggregate reports whether the scan folds aggregates instead of
// returning rows.
func (s *Spec) IsAggregate() bool { return s != nil && len(s.Aggs) > 0 }

// Referenced returns every column the spec touches — projection, predicate,
// aggregate arguments and the group key — deduplicated, in first-use order.
// The storage engine decodes exactly these (plus its own bookkeeping
// columns such as the timestamp for window filtering).
func (s *Spec) Referenced() []string {
	if s == nil {
		return nil
	}
	seen := make(map[string]bool)
	var out []string
	add := func(c string) {
		if c != "" && !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	for _, c := range s.Columns {
		add(c)
	}
	for _, p := range s.Preds {
		add(p.Col)
	}
	for _, a := range s.Aggs {
		add(a.Col)
	}
	add(s.GroupBy)
	return out
}

// String renders the spec for EXPLAIN plans.
func (s *Spec) String() string {
	if s == nil {
		return "full scan"
	}
	var parts []string
	if len(s.Aggs) > 0 {
		aggs := make([]string, len(s.Aggs))
		for i, a := range s.Aggs {
			aggs[i] = a.String()
		}
		parts = append(parts, "agg "+strings.Join(aggs, ","))
		if s.GroupBy != "" {
			parts = append(parts, "group "+s.GroupBy)
		}
	} else if s.Columns != nil {
		parts = append(parts, "cols "+strings.Join(s.Columns, ","))
	}
	if len(s.Preds) > 0 {
		preds := make([]string, len(s.Preds))
		for i, p := range s.Preds {
			preds[i] = p.String()
		}
		parts = append(parts, "where "+strings.Join(preds, " AND "))
	}
	if len(parts) == 0 {
		return "all columns"
	}
	return strings.Join(parts, " ")
}

// WireValue is a typed value in wire form, JSON-safe for the cluster RPC.
// Kind is "", "int", "float", "str" or "time"; the empty kind is null.
type WireValue struct {
	Kind string `json:"kind,omitempty"`
	Val  string `json:"val,omitempty"`
}

// FromValue captures a typed value in wire form.
func FromValue(v telco.Value) WireValue {
	switch v.Kind() {
	case telco.KindInt:
		return WireValue{Kind: "int", Val: v.Format()}
	case telco.KindFloat:
		return WireValue{Kind: "float", Val: v.Format()}
	case telco.KindString:
		return WireValue{Kind: "str", Val: v.Str()}
	case telco.KindTime:
		return WireValue{Kind: "time", Val: v.Format()}
	}
	return WireValue{}
}

// Value reconstructs the typed value.
func (w WireValue) Value() telco.Value {
	var k telco.Kind
	switch w.Kind {
	case "":
		return telco.Null
	case "int":
		k = telco.KindInt
	case "float":
		k = telco.KindFloat
	case "str":
		return telco.String(w.Val) // ParseValue("") would null an empty string
	case "time":
		k = telco.KindTime
	}
	v, err := telco.ParseValue(k, w.Val)
	if err != nil {
		return telco.Null
	}
	return v
}

// Cell is the mergeable state of one aggregate within one group.
type Cell struct {
	// Seen marks that at least one non-null value contributed; an unseen
	// SUM/MIN/MAX finalizes to NULL, mirroring the SQL aggregate states.
	Seen bool `json:"seen,omitempty"`
	// Count is the COUNT contribution (rows for COUNT(*), non-null values
	// for COUNT(col)).
	Count int64 `json:"count,omitempty"`
	// ISum is the exact integer SUM contribution.
	ISum int64 `json:"isum,omitempty"`
	// Min and Max are the extreme values observed.
	Min WireValue `json:"min"`
	Max WireValue `json:"max"`
}

// Partial is one group's partial aggregate state — the unit shards ship to
// the coordinator instead of rows.
type Partial struct {
	// Key orders and merges groups; it is the group value's wire form ("" for
	// the single implicit group of an ungrouped aggregate).
	Key string `json:"key"`
	// Group is the typed group value.
	Group WireValue `json:"group"`
	// Cells align with Spec.Aggs.
	Cells []Cell `json:"cells"`
}

// NewPartial returns a zeroed partial for the spec's aggregates.
func (s *Spec) NewPartial(group telco.Value) *Partial {
	return &Partial{Key: group.Format(), Group: FromValue(group), Cells: make([]Cell, len(s.Aggs))}
}

// AddRow folds one row into the partial. vals aligns with Spec.Aggs: the
// i'th entry is that aggregate's argument value (ignored for COUNT(*)).
func (s *Spec) AddRow(p *Partial, vals []telco.Value) {
	for i, a := range s.Aggs {
		c := &p.Cells[i]
		if a.Fn == "COUNT" && a.Col == "" {
			c.Count++
			c.Seen = true
			continue
		}
		v := vals[i]
		if v.IsNull() {
			continue
		}
		switch a.Fn {
		case "COUNT":
			c.Count++
		case "SUM":
			c.ISum += v.Int64()
		case "MIN":
			if !c.Seen || v.Compare(c.Min.Value()) < 0 {
				c.Min = FromValue(v)
			}
		case "MAX":
			if !c.Seen || v.Compare(c.Max.Value()) > 0 {
				c.Max = FromValue(v)
			}
		}
		c.Seen = true
	}
}

// AddMeta folds a whole chunk of rows known to match the window and every
// predicate, without decoding it: rows is the chunk's row count and mins/
// maxs the integer zone bounds of each aggregate's column (ignored for
// COUNT(*)). The caller guarantees a zone exists for every non-COUNT(*)
// aggregate — zone presence implies the column holds rows non-null integer
// values, so COUNT(col) == rows and SUM is not derivable (AddMeta callers
// must decode for SUM; see CanUseMeta).
func (s *Spec) AddMeta(p *Partial, rows int64, mins, maxs []int64, kinds []telco.Kind) {
	for i, a := range s.Aggs {
		c := &p.Cells[i]
		switch a.Fn {
		case "COUNT":
			c.Count += rows
		case "MIN":
			v := intValue(kinds[i], mins[i])
			if !c.Seen || v.Compare(c.Min.Value()) < 0 {
				c.Min = FromValue(v)
			}
		case "MAX":
			v := intValue(kinds[i], maxs[i])
			if !c.Seen || v.Compare(c.Max.Value()) > 0 {
				c.Max = FromValue(v)
			}
		}
		c.Seen = true
	}
}

// CanUseMeta reports whether the spec's aggregates are all answerable from
// chunk metadata (row counts and integer zone maps) alone: COUNT over any
// zoned (hence null-free) column or the whole row, MIN/MAX over zoned
// columns. SUM always needs the column values. GroupBy always decodes.
func (s *Spec) CanUseMeta(zoned func(col string) bool) bool {
	if s.GroupBy != "" {
		return false
	}
	for _, a := range s.Aggs {
		switch a.Fn {
		case "COUNT":
			if a.Col != "" && !zoned(a.Col) {
				return false
			}
		case "MIN", "MAX":
			if !zoned(a.Col) {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// intValue lifts an integer zone bound back into the column's value kind.
func intValue(k telco.Kind, i int64) telco.Value {
	switch k {
	case telco.KindFloat:
		return telco.Float(float64(i))
	case telco.KindTime:
		v, err := telco.ParseValue(telco.KindTime, strconv.FormatInt(i, 10))
		if err != nil {
			return telco.Null
		}
		return v
	default:
		return telco.Int(i)
	}
}

// Merge folds src into dst key-wise and returns dst sorted by group key.
// Merging is associative and commutative, so shard partials fold in any
// arrival order.
func Merge(dst, src []Partial) []Partial {
	byKey := make(map[string]int, len(dst))
	for i := range dst {
		byKey[dst[i].Key] = i
	}
	for _, p := range src {
		i, ok := byKey[p.Key]
		if !ok {
			byKey[p.Key] = len(dst)
			dst = append(dst, p)
			continue
		}
		d := &dst[i]
		for j := range p.Cells {
			dc, sc := &d.Cells[j], p.Cells[j]
			dc.Count += sc.Count
			dc.ISum += sc.ISum
			if sc.Seen {
				if !dc.Seen {
					dc.Min, dc.Max = sc.Min, sc.Max
				} else {
					if sc.Min.Value().Compare(dc.Min.Value()) < 0 {
						dc.Min = sc.Min
					}
					if sc.Max.Value().Compare(dc.Max.Value()) > 0 {
						dc.Max = sc.Max
					}
				}
				dc.Seen = true
			}
		}
	}
	sort.Slice(dst, func(i, j int) bool { return dst[i].Key < dst[j].Key })
	return dst
}

// Finalize renders one aggregate cell to its SQL result value, mirroring
// the SQL engine's aggregate states: COUNT of nothing is 0, SUM/MIN/MAX of
// nothing is NULL, and a pushed-down SUM is always an exact integer.
func (a Agg) Finalize(c Cell) telco.Value {
	switch a.Fn {
	case "COUNT":
		return telco.Int(c.Count)
	case "SUM":
		if !c.Seen {
			return telco.Null
		}
		return telco.Int(c.ISum)
	case "MIN":
		if !c.Seen {
			return telco.Null
		}
		return c.Min.Value()
	case "MAX":
		if !c.Seen {
			return telco.Null
		}
		return c.Max.Value()
	}
	return telco.Null
}

// Validate rejects malformed specs at the RPC boundary.
func (s *Spec) Validate() error {
	if s == nil {
		return nil
	}
	for _, p := range s.Preds {
		switch p.Op {
		case "=", "!=", "<", "<=", ">", ">=":
		default:
			return fmt.Errorf("scanspec: bad predicate op %q", p.Op)
		}
		switch p.Kind {
		case "int", "float", "str":
		default:
			return fmt.Errorf("scanspec: bad predicate literal kind %q", p.Kind)
		}
	}
	for _, a := range s.Aggs {
		switch a.Fn {
		case "COUNT", "SUM", "MIN", "MAX":
		default:
			return fmt.Errorf("scanspec: bad aggregate %q", a.Fn)
		}
		if a.Col == "" && a.Fn != "COUNT" {
			return fmt.Errorf("scanspec: %s requires a column", a.Fn)
		}
	}
	return nil
}
