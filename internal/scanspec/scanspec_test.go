package scanspec

import (
	"encoding/json"
	"testing"

	"spate/internal/telco"
)

func TestPredEval(t *testing.T) {
	cases := []struct {
		p    Pred
		v    telco.Value
		want bool
	}{
		{Pred{"d", "=", "int", "5"}, telco.Int(5), true},
		{Pred{"d", "=", "int", "5"}, telco.Int(6), false},
		{Pred{"d", "!=", "int", "5"}, telco.Int(6), true},
		{Pred{"d", "<", "int", "5"}, telco.Int(4), true},
		{Pred{"d", "<=", "int", "5"}, telco.Int(5), true},
		{Pred{"d", ">", "int", "5"}, telco.Int(5), false},
		{Pred{"d", ">=", "int", "5"}, telco.Int(5), true},
		{Pred{"s", "=", "str", "DATA"}, telco.String("DATA"), true},
		{Pred{"s", "!=", "str", "DATA"}, telco.String("VOICE"), true},
		{Pred{"f", ">", "float", "1.5"}, telco.Float(2), true},
		// SQL three-valued logic: a null row value never satisfies.
		{Pred{"d", "=", "int", "5"}, telco.Null, false},
		{Pred{"d", "!=", "int", "5"}, telco.Null, false},
		// Unparseable literal evaluates to unknown, filtering the row.
		{Pred{"d", "=", "int", "x"}, telco.Int(5), false},
	}
	for _, c := range cases {
		if got := c.p.Eval(c.v); got != c.want {
			t.Errorf("%s over %s = %v, want %v", c.p, c.v.Format(), got, c.want)
		}
	}
}

// TestZoneLogicConsistency cross-checks ZonePrune and ZoneAllMatch against
// brute-force evaluation over every value in the zone: prune means no
// value matches, all-match means every value matches, and the two are
// never both true for a non-empty zone.
func TestZoneLogicConsistency(t *testing.T) {
	ops := []string{"=", "!=", "<", "<=", ">", ">="}
	for _, op := range ops {
		for lit := int64(-1); lit <= 6; lit++ {
			p := Pred{Col: "c", Op: op, Kind: "int", Val: telco.Int(lit).Format()}
			for min := int64(0); min <= 4; min++ {
				for max := min; max <= 4; max++ {
					any, all := false, true
					for v := min; v <= max; v++ {
						if p.Eval(telco.Int(v)) {
							any = true
						} else {
							all = false
						}
					}
					if got := p.ZonePrune(min, max); got && any {
						t.Errorf("%s zone [%d,%d]: pruned but a value matches", p, min, max)
					} else if !got && !any {
						// Pruning may be conservative, but the core ops on
						// exact int zones should not miss: report once.
						t.Errorf("%s zone [%d,%d]: prunable but not pruned", p, min, max)
					}
					if got := p.ZoneAllMatch(min, max); got && !all {
						t.Errorf("%s zone [%d,%d]: all-match but a value fails", p, min, max)
					} else if !got && all {
						t.Errorf("%s zone [%d,%d]: all match but not detected", p, min, max)
					}
				}
			}
		}
	}
	// Non-integer literals must never prune or certify.
	sp := Pred{Col: "c", Op: "=", Kind: "str", Val: "x"}
	if sp.ZonePrune(0, 1) || sp.ZoneAllMatch(0, 1) {
		t.Error("string literal used an integer zone")
	}
}

func TestTimeWindow(t *testing.T) {
	var nilWin *TimeWindow
	if !nilWin.Contains(42) || !nilWin.OverlapsRange(1, 2) || !nilWin.ContainsRange(1, 2) {
		t.Error("nil window must contain everything")
	}
	w := nilWin.TightenFrom(100).TightenTo(200)
	for ns, want := range map[int64]bool{99: false, 100: true, 199: true, 200: false} {
		if w.Contains(ns) != want {
			t.Errorf("Contains(%d) = %v, want %v (half-open [100,200))", ns, !want, want)
		}
	}
	if !w.ContainsRange(100, 199) || w.ContainsRange(100, 200) {
		t.Error("ContainsRange bounds wrong")
	}
	if !w.OverlapsRange(50, 100) || w.OverlapsRange(50, 99) || w.OverlapsRange(200, 300) || !w.OverlapsRange(199, 300) {
		t.Error("OverlapsRange bounds wrong")
	}
	// Tighten only narrows.
	if got := w.TightenFrom(50); got.From != 100 {
		t.Errorf("TightenFrom widened to %d", got.From)
	}
	if got := w.TightenTo(300); got.To != 200 {
		t.Errorf("TightenTo widened to %d", got.To)
	}
	if got := w.TightenFrom(150); got.From != 150 {
		t.Errorf("TightenFrom(150) = %d", got.From)
	}
}

func TestAddRowFinalize(t *testing.T) {
	s := &Spec{Aggs: []Agg{
		{Fn: "COUNT"}, {Fn: "COUNT", Col: "v"}, {Fn: "SUM", Col: "v"},
		{Fn: "MIN", Col: "v"}, {Fn: "MAX", Col: "v"},
	}}
	p := s.NewPartial(telco.Null)
	for _, v := range []telco.Value{telco.Int(3), telco.Null, telco.Int(-1), telco.Int(7)} {
		s.AddRow(p, []telco.Value{telco.Null, v, v, v, v})
	}
	want := []telco.Value{telco.Int(4), telco.Int(3), telco.Int(9), telco.Int(-1), telco.Int(7)}
	for i, a := range s.Aggs {
		got := a.Finalize(p.Cells[i])
		if got.Format() != want[i].Format() {
			t.Errorf("%s = %s, want %s", a, got.Format(), want[i].Format())
		}
	}
	// Aggregates over nothing: COUNT is 0, the rest NULL.
	empty := s.NewPartial(telco.Null)
	for i, a := range s.Aggs {
		got := a.Finalize(empty.Cells[i])
		if a.Fn == "COUNT" {
			if got.Int64() != 0 {
				t.Errorf("%s of nothing = %s", a, got.Format())
			}
		} else if !got.IsNull() {
			t.Errorf("%s of nothing = %s, want NULL", a, got.Format())
		}
	}
}

// TestAddMetaMatchesAddRow: folding a chunk from zone metadata must equal
// folding its rows one by one, for the meta-answerable aggregates.
func TestAddMetaMatchesAddRow(t *testing.T) {
	s := &Spec{Aggs: []Agg{{Fn: "COUNT"}, {Fn: "COUNT", Col: "v"}, {Fn: "MIN", Col: "v"}, {Fn: "MAX", Col: "v"}}}
	if !s.CanUseMeta(func(string) bool { return true }) {
		t.Fatal("meta-answerable aggregates rejected")
	}
	rows := []int64{4, -2, 9, 9, 0}
	byRow := s.NewPartial(telco.Null)
	for _, r := range rows {
		v := telco.Int(r)
		s.AddRow(byRow, []telco.Value{telco.Null, v, v, v})
	}
	byMeta := s.NewPartial(telco.Null)
	s.AddMeta(byMeta, int64(len(rows)),
		[]int64{0, 0, -2, -2}, []int64{0, 0, 9, 9},
		[]telco.Kind{telco.KindInt, telco.KindInt, telco.KindInt, telco.KindInt})
	for i, a := range s.Aggs {
		r, m := a.Finalize(byRow.Cells[i]), a.Finalize(byMeta.Cells[i])
		if r.Format() != m.Format() {
			t.Errorf("%s: meta %s, rows %s", a, m.Format(), r.Format())
		}
	}
	// SUM and GROUP BY disqualify metadata answering.
	if (&Spec{Aggs: []Agg{{Fn: "SUM", Col: "v"}}}).CanUseMeta(func(string) bool { return true }) {
		t.Error("SUM answered from metadata")
	}
	if (&Spec{Aggs: []Agg{{Fn: "COUNT"}}, GroupBy: "g"}).CanUseMeta(func(string) bool { return true }) {
		t.Error("grouped aggregate answered from metadata")
	}
	if (&Spec{Aggs: []Agg{{Fn: "MIN", Col: "v"}}}).CanUseMeta(func(string) bool { return false }) {
		t.Error("MIN over unzoned column answered from metadata")
	}
}

// TestMergeAssociativeCommutative: any fold order of shard partials gives
// the same final answer.
func TestMergeAssociativeCommutative(t *testing.T) {
	s := &Spec{Aggs: []Agg{{Fn: "COUNT"}, {Fn: "SUM", Col: "v"}, {Fn: "MIN", Col: "v"}, {Fn: "MAX", Col: "v"}}, GroupBy: "g"}
	shard := func(groups map[string][]int64) []Partial {
		var out []Partial
		for g, vals := range groups {
			p := s.NewPartial(telco.String(g))
			for _, v := range vals {
				tv := telco.Int(v)
				s.AddRow(p, []telco.Value{telco.Null, tv, tv, tv})
			}
			out = append(out, *p)
		}
		return out
	}
	a := shard(map[string][]int64{"x": {1, 2}, "y": {10}})
	b := shard(map[string][]int64{"y": {-5, 3}, "z": {7}})
	c := shard(map[string][]int64{"x": {100}})

	render := func(ps []Partial) string {
		data, _ := json.Marshal(ps)
		return string(data)
	}
	clone := func(ps []Partial) []Partial {
		out := make([]Partial, len(ps))
		for i, p := range ps {
			out[i] = p
			out[i].Cells = append([]Cell(nil), p.Cells...)
		}
		return out
	}
	ab_c := Merge(Merge(clone(a), clone(b)), clone(c))
	c_ba := Merge(Merge(clone(c), clone(b)), clone(a))
	if render(ab_c) != render(c_ba) {
		t.Fatalf("fold order changed the answer:\n%s\n%s", render(ab_c), render(c_ba))
	}
	if len(ab_c) != 3 || ab_c[0].Key > ab_c[1].Key || ab_c[1].Key > ab_c[2].Key {
		t.Fatalf("merged partials not key-sorted: %s", render(ab_c))
	}
	// Spot-check group y: rows 10, -5, 3.
	for _, p := range ab_c {
		if p.Group.Value().Str() != "y" {
			continue
		}
		got := []telco.Value{
			s.Aggs[0].Finalize(p.Cells[0]), s.Aggs[1].Finalize(p.Cells[1]),
			s.Aggs[2].Finalize(p.Cells[2]), s.Aggs[3].Finalize(p.Cells[3]),
		}
		want := []int64{3, 8, -5, 10}
		for i := range want {
			if got[i].Int64() != want[i] {
				t.Errorf("group y agg %d = %s, want %d", i, got[i].Format(), want[i])
			}
		}
	}
}

func TestWireValueRoundTrip(t *testing.T) {
	vals := []telco.Value{
		telco.Int(-42), telco.Float(1.5), telco.String(""), telco.String("DATA"), telco.Null,
	}
	for _, v := range vals {
		got := FromValue(v).Value()
		if got.Kind() != v.Kind() || got.Format() != v.Format() {
			t.Errorf("round trip %s (%v) -> %s (%v)", v.Format(), v.Kind(), got.Format(), got.Kind())
		}
	}
	// And through JSON, as the cluster RPC carries it.
	w := FromValue(telco.Int(7))
	data, _ := json.Marshal(w)
	var back WireValue
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Value().Int64() != 7 {
		t.Errorf("JSON round trip = %s", back.Value().Format())
	}
}

func TestValidate(t *testing.T) {
	good := &Spec{
		Preds: []Pred{{Col: "c", Op: ">=", Kind: "int", Val: "1"}},
		Aggs:  []Agg{{Fn: "COUNT"}, {Fn: "SUM", Col: "v"}},
	}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	var nilSpec *Spec
	if err := nilSpec.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []*Spec{
		{Preds: []Pred{{Col: "c", Op: "LIKE", Kind: "str", Val: "x"}}},
		{Preds: []Pred{{Col: "c", Op: "=", Kind: "time", Val: "x"}}},
		{Aggs: []Agg{{Fn: "AVG", Col: "v"}}},
		{Aggs: []Agg{{Fn: "SUM"}}},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("accepted %+v", bad)
		}
	}
}

func TestReferencedAndString(t *testing.T) {
	s := &Spec{
		Columns: []string{"a", "b"},
		Preds:   []Pred{{Col: "b", Op: "=", Kind: "int", Val: "1"}, {Col: "c", Op: ">", Kind: "int", Val: "2"}},
		Aggs:    []Agg{{Fn: "SUM", Col: "d"}},
		GroupBy: "e",
	}
	got := s.Referenced()
	want := []string{"a", "b", "c", "d", "e"}
	if len(got) != len(want) {
		t.Fatalf("referenced = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("referenced = %v, want %v", got, want)
		}
	}
	if (*Spec)(nil).String() != "full scan" {
		t.Error("nil spec String")
	}
	if s := (&Spec{}).String(); s != "all columns" {
		t.Errorf("empty spec String = %q", s)
	}
}
