module spate

go 1.22
