// Benchmarks regenerating the paper's tables and figures as testing.B
// targets — one benchmark (family) per table/figure. Run with:
//
//	go test -bench=. -benchmem
//
// Space figures report bytes via b.ReportMetric (benchmarks measure time;
// stored bytes per snapshot appear as a custom metric). The full printed
// reproductions, with the paper-shape commentary, come from cmd/spate-bench.
package spate_test

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"spate/internal/bench"
	"spate/internal/compress"
	_ "spate/internal/compress/all"
	"spate/internal/compute"
	"spate/internal/core"
	"spate/internal/dfs"
	"spate/internal/entropy"
	"spate/internal/gen"
	"spate/internal/raw"
	"spate/internal/shahed"
	"spate/internal/snapshot"
	"spate/internal/tasks"
	"spate/internal/telco"
)

// benchScale keeps individual benchmark iterations fast while preserving
// the paper's data shape.
const benchScale = 0.005

func benchGen() *gen.Generator {
	return gen.New(gen.DefaultConfig(benchScale))
}

// snapshotText renders one CDR+NMS snapshot to its wire form.
func snapshotText(g *gen.Generator, e telco.Epoch) []byte {
	var buf bytes.Buffer
	_ = g.CDRTable(e).WriteText(&buf)
	_ = g.NMSTable(e).WriteText(&buf)
	return buf.Bytes()
}

// --- Figure 4 ---

func BenchmarkFig4Entropy(b *testing.B) {
	g := benchGen()
	tab := g.CDRTable(telco.EpochOf(g.Config().Start.Add(9 * time.Hour)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		es := entropy.OfTable(tab)
		if len(es) != telco.NumCDRAttrs {
			b.Fatal("wrong attr count")
		}
	}
}

// --- Table I ---

func BenchmarkTable1_Compress(b *testing.B) {
	g := benchGen()
	data := snapshotText(g, telco.EpochOf(g.Config().Start.Add(9*time.Hour)))
	for _, name := range compress.Names() {
		c, err := compress.Lookup(name)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			b.SetBytes(int64(len(data)))
			var comp []byte
			for i := 0; i < b.N; i++ {
				comp = c.Compress(comp[:0], data)
			}
			b.ReportMetric(compress.Ratio(len(data), len(comp)), "ratio")
		})
	}
}

func BenchmarkTable1_Decompress(b *testing.B) {
	g := benchGen()
	data := snapshotText(g, telco.EpochOf(g.Config().Start.Add(9*time.Hour)))
	for _, name := range compress.Names() {
		c, err := compress.Lookup(name)
		if err != nil {
			b.Fatal(err)
		}
		comp := c.Compress(nil, data)
		b.Run(name, func(b *testing.B) {
			b.SetBytes(int64(len(data)))
			var out []byte
			for i := 0; i < b.N; i++ {
				var err error
				out, err = c.Decompress(out[:0], comp)
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Figures 7-10 (ingestion time and space, per framework) ---

// ingestBench ingests b.N fresh snapshots into a new framework instance
// and reports stored bytes per snapshot as a custom metric, covering both
// the time series (Fig. 7/9) and the space series (Fig. 8/10).
func ingestBench(b *testing.B, mk func(fs *dfs.Cluster, g *gen.Generator) (tasks.Framework, error)) {
	g := benchGen()
	fs, err := dfs.NewCluster(b.TempDir(), dfs.Config{BlockSize: 8 << 20, DataNodes: 4, Replication: 3})
	if err != nil {
		b.Fatal(err)
	}
	f, err := mk(fs, g)
	if err != nil {
		b.Fatal(err)
	}
	e0 := telco.EpochOf(g.Config().Start)
	// Pre-generate snapshots so generation cost stays out of the loop.
	snaps := make([]*snapshot.Snapshot, b.N)
	for i := range snaps {
		e := e0 + telco.Epoch(i)
		sn := snapshot.New(e)
		sn.Add(g.CDRTable(e))
		sn.Add(g.NMSTable(e))
		snaps[i] = sn
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.Ingest(snaps[i]); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	data, idx := f.Space()
	b.ReportMetric(float64(data+idx)/float64(b.N), "storedB/snap")
}

func BenchmarkFig7_IngestRAW(b *testing.B) {
	ingestBench(b, func(fs *dfs.Cluster, g *gen.Generator) (tasks.Framework, error) {
		s, err := raw.Open(fs, g.CellTable())
		return tasks.Raw{S: s}, err
	})
}

func BenchmarkFig7_IngestSHAHED(b *testing.B) {
	ingestBench(b, func(fs *dfs.Cluster, g *gen.Generator) (tasks.Framework, error) {
		s, err := shahed.Open(fs, g.CellTable())
		return tasks.Shahed{S: s}, err
	})
}

func BenchmarkFig7_IngestSPATE(b *testing.B) {
	ingestBench(b, func(fs *dfs.Cluster, g *gen.Generator) (tasks.Framework, error) {
		e, err := core.Open(fs, g.CellTable(), core.Options{})
		return tasks.Spate{E: e}, err
	})
}

// Fig. 9/10 vary the weekday; the per-snapshot mechanism is identical, so
// the benchmark ingests a weekend day (lower load) for the contrast.
func BenchmarkFig9_IngestSPATESunday(b *testing.B) {
	g := benchGen()
	fs, err := dfs.NewCluster(b.TempDir(), dfs.Config{BlockSize: 8 << 20, DataNodes: 4, Replication: 3})
	if err != nil {
		b.Fatal(err)
	}
	eng, err := core.Open(fs, g.CellTable(), core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	f := tasks.Spate{E: eng}
	// First Sunday of the trace (start is a Monday).
	sunday := g.Config().Start.AddDate(0, 0, 6)
	e0 := telco.EpochOf(sunday)
	snaps := make([]*snapshot.Snapshot, b.N)
	for i := range snaps {
		e := e0 + telco.Epoch(i)
		sn := snapshot.New(e)
		sn.Add(g.CDRTable(e))
		sn.Add(g.NMSTable(e))
		snaps[i] = sn
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.Ingest(snaps[i]); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	data, idx := f.Space()
	b.ReportMetric(float64(data+idx)/float64(b.N), "storedB/snap")
}

// --- Figures 11/12 (task response times, per framework) ---

// taskWorld is built once and shared by the response-time benchmarks.
var (
	taskWorldOnce sync.Once
	taskWorld     *bench.World
	taskWorldErr  error
)

func getTaskWorld(b *testing.B) *bench.World {
	taskWorldOnce.Do(func() {
		o := bench.Options{Scale: benchScale, Days: 1, Iterations: 1, Workers: 2, Seed: 1}
		taskWorld, taskWorldErr = bench.BuildWorld(o,
			bench.TraceEpochs(gen.DefaultConfig(benchScale), 1), core.Options{})
	})
	if taskWorldErr != nil {
		b.Fatal(taskWorldErr)
	}
	return taskWorld
}

func benchTask(b *testing.B, run func(f tasks.Framework) error) {
	w := getTaskWorld(b)
	for _, f := range w.FWs {
		f := f
		b.Run(f.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := run(f); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkFig11_T1Equality(b *testing.B) {
	w := getTaskWorld(b)
	e := telco.EpochOf(w.Cfg.Start) + 18 // 09:00
	benchTask(b, func(f tasks.Framework) error {
		_, err := tasks.T1Equality(f, e)
		return err
	})
}

func BenchmarkFig11_T2Range(b *testing.B) {
	w := getTaskWorld(b)
	wr := telco.NewTimeRange(w.Cfg.Start, w.Cfg.Start.Add(24*time.Hour))
	benchTask(b, func(f tasks.Framework) error {
		_, err := tasks.T2Range(f, wr)
		return err
	})
}

func BenchmarkFig11_T3Aggregate(b *testing.B) {
	w := getTaskWorld(b)
	wr := telco.NewTimeRange(w.Cfg.Start, w.Cfg.Start.Add(24*time.Hour))
	benchTask(b, func(f tasks.Framework) error {
		_, err := tasks.T3Aggregate(f, wr)
		return err
	})
}

func BenchmarkFig11_T4Join(b *testing.B) {
	w := getTaskWorld(b)
	wr := telco.NewTimeRange(w.Cfg.Start.Add(9*time.Hour), w.Cfg.Start.Add(10*time.Hour))
	benchTask(b, func(f tasks.Framework) error {
		_, err := tasks.T4Join(f, wr)
		return err
	})
}

func BenchmarkFig11_T5Privacy(b *testing.B) {
	w := getTaskWorld(b)
	wr := telco.NewTimeRange(w.Cfg.Start, w.Cfg.Start.Add(6*time.Hour))
	benchTask(b, func(f tasks.Framework) error {
		_, _, err := tasks.T5Privacy(f, wr, 5)
		return err
	})
}

func BenchmarkFig12_T6Statistics(b *testing.B) {
	w := getTaskWorld(b)
	wr := telco.NewTimeRange(w.Cfg.Start, w.Cfg.Start.Add(24*time.Hour))
	pool := compute.NewPool(2)
	benchTask(b, func(f tasks.Framework) error {
		_, err := tasks.T6Statistics(f, pool, wr)
		return err
	})
}

func BenchmarkFig12_T7Clustering(b *testing.B) {
	w := getTaskWorld(b)
	wr := telco.NewTimeRange(w.Cfg.Start, w.Cfg.Start.Add(12*time.Hour))
	pool := compute.NewPool(2)
	benchTask(b, func(f tasks.Framework) error {
		_, err := tasks.T7Clustering(f, pool, wr, 8)
		return err
	})
}

func BenchmarkFig12_T8Regression(b *testing.B) {
	w := getTaskWorld(b)
	wr := telco.NewTimeRange(w.Cfg.Start, w.Cfg.Start.Add(12*time.Hour))
	pool := compute.NewPool(2)
	benchTask(b, func(f tasks.Framework) error {
		_, err := tasks.T8Regression(f, pool, wr)
		return err
	})
}

// --- §VIII-C storage totals ---

func BenchmarkSpaceTotals(b *testing.B) {
	w := getTaskWorld(b)
	for i := 0; i < b.N; i++ {
		for _, f := range w.FWs {
			d, idx := f.Space()
			if d == 0 {
				b.Fatal("zero space")
			}
			_ = idx
		}
	}
	for _, f := range w.FWs {
		d, idx := f.Space()
		b.ReportMetric(float64(d+idx)/(1<<20), fmt.Sprintf("%s_MB", f.Name()))
	}
}
